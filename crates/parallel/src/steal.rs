//! [`ChunkQueue`]: a work-stealing chunk scheduler for the histogram and
//! permute phases of the parallel radix sorts.
//!
//! The input is cut into `m` fixed-stride chunks (`m` ≥ the worker count
//! when stealing is on). Each worker owns a contiguous region of chunk
//! indices and drains it front-to-back with a single `fetch_add` per claim
//! — the atomic chunk-index scheme from the paper's load-balancing
//! discussion, lifted to shared memory. A worker whose own region is empty
//! steals a chunk from the victim with the most work left, so a straggler
//! (a descheduled thread, a slow chunk, a core busy with interrupts) never
//! serializes the phase on its remaining range: any running worker can
//! finish any chunk.
//!
//! Two properties the sorts rely on, both checked by the tests below:
//!
//! * **Exactly-once**: every chunk index in `0..m` is returned by exactly
//!   one `claim` call across all workers. `fetch_add` on the region cursor
//!   linearizes concurrent claims; a cursor past `end` means the region is
//!   drained (failed bumps leave the cursor > `end`, which `remaining`
//!   saturates away).
//! * **Schedule-independence**: the sorts' output does not depend on which
//!   worker processes which chunk — per-chunk offsets fix every element's
//!   destination before the phase starts — so stealing cannot perturb
//!   sorted output or stability. Only wall-clock changes.
//!
//! With `steal = false` the queue degrades to static partitioning (each
//! worker sees only its own region), which is the pre-coalescing simple
//! path and the baseline the `realbench` zipf rows compare against.

use std::sync::atomic::{AtomicUsize, Ordering};

/// One worker's region of chunk indices: a cursor and a fixed end, padded
/// to a cache line so neighbouring cursors never share one — they are the
/// hottest shared words in the sort.
#[repr(align(64))]
struct Region {
    next: AtomicUsize,
    end: usize,
}

/// Work-stealing (or static) scheduler over chunk indices `0..chunks`.
pub struct ChunkQueue {
    regions: Vec<Region>,
    steal: bool,
}

impl ChunkQueue {
    /// Partition `0..chunks` into `workers` contiguous regions. With
    /// `steal = false`, `claim(w)` only ever returns chunks of region `w`
    /// (static partitioning).
    pub fn new(workers: usize, chunks: usize, steal: bool) -> Self {
        assert!(workers > 0, "ChunkQueue needs at least one worker");
        let regions = (0..workers)
            .map(|w| {
                let start = w * chunks / workers;
                let end = (w + 1) * chunks / workers;
                Region { next: AtomicUsize::new(start), end }
            })
            .collect();
        ChunkQueue { regions, steal }
    }

    /// Number of chunks not yet claimed (racy snapshot; exact once the
    /// phase has quiesced).
    pub fn remaining(&self) -> usize {
        self.regions.iter().map(|r| r.end.saturating_sub(r.next.load(Ordering::Relaxed))).sum()
    }

    /// Claim the next chunk for `worker`: its own region first, then — if
    /// stealing is on — a chunk from the victim with the most left.
    /// Returns `None` when every region is drained (for this worker under
    /// static partitioning, globally under stealing).
    ///
    /// Relaxed ordering is sufficient: a claim only decides *which* worker
    /// touches a chunk's disjoint data within the phase (the `fetch_add`
    /// linearizes claims on its own), and cross-phase visibility of that
    /// data is ordered by the fork/join barrier around the phase.
    pub fn claim(&self, worker: usize) -> Option<usize> {
        let own = &self.regions[worker];
        let i = own.next.fetch_add(1, Ordering::Relaxed);
        if i < own.end {
            return Some(i);
        }
        if !self.steal {
            return None;
        }
        loop {
            let mut best: Option<(usize, usize)> = None; // (remaining, victim)
            for (v, region) in self.regions.iter().enumerate() {
                if v == worker {
                    continue;
                }
                let rem = region.end.saturating_sub(region.next.load(Ordering::Relaxed));
                if rem > 0 && best.is_none_or(|(b, _)| rem > b) {
                    best = Some((rem, v));
                }
            }
            let (_, v) = best?;
            let i = self.regions[v].next.fetch_add(1, Ordering::Relaxed);
            if i < self.regions[v].end {
                return Some(i);
            }
            // Lost the race to the last chunk of that victim; rescan.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Drain a queue from `workers` real threads and return every claimed
    /// index with its claimer.
    fn drain(workers: usize, chunks: usize, steal: bool) -> Vec<(usize, usize)> {
        let q = ChunkQueue::new(workers, chunks, steal);
        let claimed: Vec<(usize, usize)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let q = &q;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(c) = q.claim(w) {
                            mine.push((w, c));
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(q.remaining(), 0);
        claimed
    }

    #[test]
    fn every_chunk_claimed_exactly_once_with_stealing() {
        for (workers, chunks) in [(1, 17), (3, 64), (7, 100), (8, 8), (5, 3)] {
            let claimed = drain(workers, chunks, true);
            assert_eq!(claimed.len(), chunks, "workers={workers} chunks={chunks}");
            let ids: BTreeSet<usize> = claimed.iter().map(|&(_, c)| c).collect();
            assert_eq!(ids.len(), chunks, "duplicate claim: workers={workers} chunks={chunks}");
            assert_eq!(ids.iter().next_back(), Some(&(chunks - 1)));
        }
    }

    #[test]
    fn static_mode_respects_region_boundaries() {
        let workers = 4;
        let chunks = 14;
        let claimed = drain(workers, chunks, false);
        assert_eq!(claimed.len(), chunks);
        for (w, c) in claimed {
            assert!(
                (w * chunks / workers..(w + 1) * chunks / workers).contains(&c),
                "worker {w} claimed chunk {c} outside its static region"
            );
        }
    }

    #[test]
    fn stealing_drains_a_single_loaded_region() {
        // All chunks in worker 0's region; workers 1..4 must steal them.
        let q = ChunkQueue::new(4, 4, true);
        // Exhaust worker 0's cursor so the others have to steal everything.
        let mut got = Vec::new();
        for w in [1, 2, 3, 1, 2, 3] {
            if let Some(c) = q.claim(w) {
                got.push(c);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(q.claim(0), None);
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let q = ChunkQueue::new(3, 0, true);
        for w in 0..3 {
            assert_eq!(q.claim(w), None);
        }
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn more_workers_than_chunks() {
        let claimed = drain(9, 2, true);
        assert_eq!(claimed.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ChunkQueue::new(0, 4, true);
    }
}
