//! Sorting records by key: (key, payload) pairs and sort-by-key for
//! arbitrary copyable records — what a database index build (the paper's
//! motivating use) actually needs.

use crate::key::RadixKey;
use crate::radix::{RadixSortConfig, SortScratch};

/// Sequential LSD radix sort of parallel `keys`/`values` arrays (structure
/// of arrays): after return, `keys` is sorted and `values[i]` is still the
/// payload of `keys[i]`. The sort is stable.
pub fn radix_sort_pairs<K: RadixKey + Default, V: Copy + Default>(
    keys: &mut [K],
    values: &mut [V],
    radix_bits: u32,
) {
    assert_eq!(keys.len(), values.len(), "keys and values must be parallel arrays");
    assert!((1..=16).contains(&radix_bits));
    let n = keys.len();
    if n <= 1 {
        return;
    }
    let bins = 1usize << radix_bits;
    let mask = (bins - 1) as u64;
    let passes = K::BITS.div_ceil(radix_bits);
    let mut key_scratch = vec![K::default(); n];
    let mut val_scratch = vec![V::default(); n];
    let mut hist = vec![0usize; bins];

    let mut flipped = false;
    for pass in 0..passes {
        let shift = pass * radix_bits;
        let (ks, vs, kd, vd): (&[K], &[V], &mut [K], &mut [V]) = if flipped {
            (&*key_scratch, &*val_scratch, &mut *keys, &mut *values)
        } else {
            (&*keys, &*values, &mut *key_scratch, &mut *val_scratch)
        };
        hist.fill(0);
        for k in ks {
            hist[k.digit(shift, mask)] += 1;
        }
        let mut acc = 0;
        for h in hist.iter_mut() {
            let c = *h;
            *h = acc;
            acc += c;
        }
        for (k, v) in ks.iter().zip(vs) {
            let d = k.digit(shift, mask);
            kd[hist[d]] = *k;
            vd[hist[d]] = *v;
            hist[d] += 1;
        }
        flipped = !flipped;
    }
    if flipped {
        keys.copy_from_slice(&key_scratch);
        values.copy_from_slice(&val_scratch);
    }
}

/// Thread-parallel LSD radix sort of parallel `keys`/`values` arrays with
/// the default configuration. Stable.
pub fn par_radix_sort_pairs<K, V>(keys: &mut [K], values: &mut [V], radix_bits: u32)
where
    K: RadixKey + Default,
    V: Copy + Default + Send + Sync,
{
    par_radix_sort_pairs_with(keys, values, &RadixSortConfig { radix_bits, ..Default::default() });
}

/// Thread-parallel LSD radix sort of parallel `keys`/`values` arrays with
/// an explicit configuration. Runs the same engine as
/// [`crate::par_radix_sort_with`] with the payload lane enabled, so the
/// pairs sort gets write coalescing, work stealing, and fused
/// histogramming too. Stable for every configuration: within a chunk,
/// records are staged and flushed in input order to consecutive ranks;
/// across chunks, lower chunk ids rank first for equal digits.
pub fn par_radix_sort_pairs_with<K, V>(keys: &mut [K], values: &mut [V], cfg: &RadixSortConfig)
where
    K: RadixKey + Default,
    V: Copy + Default + Send + Sync,
{
    let mut scratch = SortScratch::new();
    par_radix_sort_pairs_with_scratch(keys, values, cfg, &mut scratch);
}

/// [`par_radix_sort_pairs_with`] through caller-owned scratch. Repeated
/// sorts of same-shaped inputs through one [`SortScratch`] reuse every
/// internal buffer — flip arrays, histograms, and the per-worker
/// write-coalescing staging blocks — so steady-state callers (the
/// sorting service) allocate nothing per sort.
pub fn par_radix_sort_pairs_with_scratch<K, V>(
    keys: &mut [K],
    values: &mut [V],
    cfg: &RadixSortConfig,
    scratch: &mut SortScratch<K, V>,
) where
    K: RadixKey + Default,
    V: Copy + Default + Send + Sync,
{
    assert_eq!(keys.len(), values.len(), "keys and values must be parallel arrays");
    if let Err(e) = cfg.validate() {
        panic!("invalid RadixSortConfig: {e}");
    }
    if keys.len() <= cfg.sequential_cutoff.max(1) {
        return crate::radix::seq_fallback::<K, V, true>(keys, values, cfg.radix_bits, scratch);
    }
    crate::radix::sort_engine::<K, V, true>(keys, values, cfg, scratch);
}

/// Sort copyable records by an extracted radix key, in parallel. Stable
/// with respect to equal keys.
///
/// ```
/// use ccsort_parallel::pairs::par_radix_sort_by_key;
///
/// let mut orders = vec![(30u32, "c"), (10, "a"), (20, "b")];
/// par_radix_sort_by_key(&mut orders, |o| o.0);
/// assert_eq!(orders, vec![(10, "a"), (20, "b"), (30, "c")]);
/// ```
pub fn par_radix_sort_by_key<T, K, F>(items: &mut [T], key: F)
where
    T: Copy + Default + Send + Sync,
    K: RadixKey + Default,
    F: Fn(&T) -> K + Sync,
{
    let n = items.len();
    if n <= 1 {
        return;
    }
    let mut keys: Vec<K> = items.iter().map(&key).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    assert!(n <= u32::MAX as usize, "more than u32::MAX records");
    par_radix_sort_pairs(&mut keys, &mut order, crate::seq::DEFAULT_RADIX_BITS);
    // Apply the permutation.
    let src: Vec<T> = items.to_vec();
    items
        .iter_mut()
        .zip(order)
        .for_each(|(slot, idx)| *slot = src[idx as usize]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn seq_pairs_keep_payloads_attached() {
        let mut rng = StdRng::seed_from_u64(1);
        let keys_in: Vec<u32> = (0..5000).map(|_| rng.random()).collect();
        let vals_in: Vec<u64> = keys_in.iter().map(|&k| (k as u64) * 7 + 1).collect();
        let mut keys = keys_in.clone();
        let mut vals = vals_in;
        radix_sort_pairs(&mut keys, &mut vals, 8);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert!(keys.iter().zip(&vals).all(|(&k, &v)| v == (k as u64) * 7 + 1));
    }

    #[test]
    fn par_pairs_match_seq_pairs() {
        let mut rng = StdRng::seed_from_u64(2);
        let keys_in: Vec<u32> = (0..40_000).map(|_| rng.random()).collect();
        let vals_in: Vec<u32> = (0..40_000).collect();
        let (mut k1, mut v1) = (keys_in.clone(), vals_in.clone());
        let (mut k2, mut v2) = (keys_in, vals_in);
        radix_sort_pairs(&mut k1, &mut v1, 8);
        par_radix_sort_pairs(&mut k2, &mut v2, 8);
        assert_eq!(k1, k2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn pairs_sort_is_stable() {
        // Many duplicate keys; payloads record original order.
        let mut keys: Vec<u8> = (0..20_000u32).map(|i| (i % 5) as u8).collect();
        let mut vals: Vec<u32> = (0..20_000).collect();
        par_radix_sort_pairs(&mut keys, &mut vals, 8);
        for w in vals.windows(2).zip(keys.windows(2)) {
            let (v, k) = w;
            if k[0] == k[1] {
                assert!(v[0] < v[1], "stability violated for key {}", k[0]);
            }
        }
    }

    #[test]
    fn by_key_sorts_records() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut recs: Vec<(i32, u32)> = (0..30_000).map(|i| (rng.random(), i)).collect();
        let mut expect = recs.clone();
        expect.sort_by_key(|r| r.0);
        par_radix_sort_by_key(&mut recs, |r| r.0);
        // Equal keys keep original (index) order == sort_by_key stability.
        assert_eq!(recs, expect);
    }

    #[test]
    fn pairs_stable_under_every_config() {
        // Duplicate-heavy keys with order-recording payloads: every
        // mechanism combination must reproduce the sequential stable order.
        let mut rng = StdRng::seed_from_u64(9);
        let keys_in: Vec<u16> = (0..30_000).map(|_| rng.random_range(0..32u16)).collect();
        let vals_in: Vec<u32> = (0..30_000).collect();
        let (mut ks, mut vs) = (keys_in.clone(), vals_in.clone());
        radix_sort_pairs(&mut ks, &mut vs, 8);
        let base = RadixSortConfig { sequential_cutoff: 0, ..Default::default() };
        for cfg in [
            RadixSortConfig { sequential_cutoff: 0, ..RadixSortConfig::simple() },
            RadixSortConfig { coalesce_bytes: Some(8), ..base.clone() },
            RadixSortConfig { fused_histogram: false, work_stealing: false, ..base.clone() },
            base,
        ] {
            let (mut k, mut v) = (keys_in.clone(), vals_in.clone());
            par_radix_sort_pairs_with(&mut k, &mut v, &cfg);
            assert_eq!(k, ks, "keys diverge under {cfg:?}");
            assert_eq!(v, vs, "stable order diverges under {cfg:?}");
        }
    }

    #[test]
    fn pairs_edge_cases() {
        let mut k: Vec<u32> = vec![];
        let mut v: Vec<u32> = vec![];
        par_radix_sort_pairs(&mut k, &mut v, 8);
        let mut k = vec![1u32];
        let mut v = vec![9u32];
        radix_sort_pairs(&mut k, &mut v, 8);
        assert_eq!((k[0], v[0]), (1, 9));
    }

    #[test]
    #[should_panic(expected = "parallel arrays")]
    fn mismatched_lengths_rejected() {
        let mut k = vec![1u32, 2];
        let mut v = vec![0u32];
        radix_sort_pairs(&mut k, &mut v, 8);
    }
}
