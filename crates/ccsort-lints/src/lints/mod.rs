//! The lint registry: five repo-specific lints over [`SourceFile`]s.
//!
//! Each lint guards one cross-cutting convention the simulator's
//! bit-exactness or synchronization story depends on. They are heuristic
//! token/structure matchers, tuned to this codebase's idiom — precise
//! enough to gate CI, suppressible per-site with a mandatory written
//! justification (see [`crate::source::DIRECTIVE_MARKER`]).

use crate::source::SourceFile;

mod divergent_barrier;
mod fastpath_without_equiv;
mod float_reassociation;
mod nondeterministic_iteration;
mod untimed_outside_setup;

pub use divergent_barrier::DivergentBarrier;
pub use fastpath_without_equiv::FastpathWithoutEquiv;
pub use float_reassociation::FloatReassociation;
pub use nondeterministic_iteration::NondeterministicIteration;
pub use untimed_outside_setup::UntimedOutsideSetup;

/// One diagnostic emitted by a lint.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: &'static str,
    pub rel_path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
    /// The invariant being guarded, shown as a `note:`.
    pub note: &'static str,
}

/// Workspace-wide facts computed in a pre-pass before any lint runs.
#[derive(Debug, Default)]
pub struct WorkspaceCtx {
    /// Names of non-test functions that contain a sampled
    /// `equiv_reference*` replay. Calls *to* such a function are
    /// fast-path-safe: the replay travels with the callee.
    pub equiv_checked_fns: Vec<String>,
}

impl WorkspaceCtx {
    /// Build the context from all files about to be linted.
    pub fn build(files: &[SourceFile]) -> WorkspaceCtx {
        let mut equiv_checked_fns = Vec::new();
        for file in files {
            for func in &file.functions {
                if func.is_test {
                    continue;
                }
                let body = &file.tokens[func.body_start..=func.body_end];
                let has_replay = body.iter().enumerate().any(|(k, t)| {
                    t.ident().is_some_and(|s| s.starts_with("equiv_reference"))
                        && body.get(k + 1).is_some_and(|n| n.is_punct('('))
                });
                if has_replay && !equiv_checked_fns.contains(&func.name) {
                    equiv_checked_fns.push(func.name.clone());
                }
            }
        }
        equiv_checked_fns.sort();
        WorkspaceCtx { equiv_checked_fns }
    }
}

/// A single lint pass.
pub trait Lint {
    /// Snake-case name used in diagnostics and allow directives.
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn description(&self) -> &'static str;
    /// Should this file be linted at all? `rel_path` is workspace-relative
    /// with `/` separators.
    fn applies_to(&self, rel_path: &str) -> bool;
    fn check(&self, file: &SourceFile, ctx: &WorkspaceCtx) -> Vec<Finding>;
}

/// All lints, in reporting order.
pub fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(DivergentBarrier),
        Box::new(UntimedOutsideSetup),
        Box::new(FastpathWithoutEquiv),
        Box::new(FloatReassociation),
        Box::new(NondeterministicIteration),
    ]
}

/// True when `rel_path` is production source: under a `src/` directory.
/// (`tests/`, `benches/`, `examples/`, `ui/` trees never affect
/// observables; the dynamic rigs already cover them.)
pub fn is_production_src(rel_path: &str) -> bool {
    rel_path.starts_with("src/") || rel_path.contains("/src/")
}
