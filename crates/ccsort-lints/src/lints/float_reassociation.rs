//! `float_reassociation`: iterator reductions over `f64` timing values in
//! the crates whose outputs are golden-file bit-exact.
//!
//! The committed goldens (`results/golden_quick.txt`, the equivalence
//! tests, `BENCH_simulator.json` parity assertions) compare simulated
//! times to the last bit. f64 addition is not associative, so *any*
//! reduction whose order is implicit — `iter().sum()`, a seeded `fold` —
//! is one refactor away from changing observables (a rayon `par_iter`
//! drop-in, a chunked rewrite). In `crates/machine` and `crates/bench`
//! accumulation order must be explicit: a plain indexed loop.
//!
//! Order-insensitive reductions (`fold(0.0, f64::max)` and min) are
//! exempt: max/min are associative and commutative for the non-NaN values
//! the simulator produces.

use crate::lints::{Finding, Lint, WorkspaceCtx};
use crate::source::SourceFile;
use crate::lexer::TokenKind;

pub struct FloatReassociation;

impl FloatReassociation {
    /// Is the token at `i` (an ident) preceded by `.` — i.e. a method call?
    fn is_method(file: &SourceFile, i: usize) -> bool {
        i > 0 && file.tokens[i - 1].is_punct('.')
    }
}

impl Lint for FloatReassociation {
    fn name(&self) -> &'static str {
        "float_reassociation"
    }

    fn description(&self) -> &'static str {
        "implicit-order f64 reduction (sum/fold) on timing values in machine/bench/service"
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        // steal.rs rides along: steal heuristics must never weigh remaining
        // work with implicitly-ordered float accumulation, or the chosen
        // victim (and the sort's memory traffic) varies run to run.
        // crates/service too: flush decisions (and any future load-aware
        // policy) must never hinge on implicitly-ordered float accumulation,
        // or batch composition varies run to run.
        rel_path.starts_with("crates/machine/src/")
            || rel_path.starts_with("crates/bench/src/")
            || rel_path.starts_with("crates/service/src/")
            || rel_path == "crates/parallel/src/steal.rs"
    }

    fn check(&self, file: &SourceFile, _ctx: &WorkspaceCtx) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = &file.tokens;
        for (i, t) in toks.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            if file.in_test_code(t.line) {
                continue;
            }

            // Case 1: `.sum::<f64>()` — explicitly typed f64 sum.
            if name == "sum" && Self::is_method(file, i) {
                let turbofish_f64 = toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|t| t.is_punct('<'))
                    && toks.get(i + 4).is_some_and(|t| t.is_ident("f64"));
                // Case 2: untyped `.sum()` inside a statement that binds an
                // f64 (`let total: f64 = ....sum();`): scan back to the
                // statement start for an `f64` token.
                let stmt_f64 = !turbofish_f64
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks[..i]
                        .iter()
                        .rev()
                        .take_while(|t| {
                            !t.is_punct(';') && !t.is_punct('{') && !t.is_punct('}')
                        })
                        .any(|t| t.is_ident("f64"));
                if turbofish_f64 || stmt_f64 {
                    findings.push(Finding {
                        lint: self.name(),
                        rel_path: file.rel_path.clone(),
                        line: t.line,
                        col: t.col,
                        message: "implicit-order f64 `sum()` on timing values".to_string(),
                        note: "golden files are bit-exact in accumulated f64 time; make the \
                               accumulation order explicit with an indexed loop (DESIGN.md §13)",
                    });
                }
                continue;
            }

            // Case 3: `.fold(<float literal>, f)` with an order-sensitive
            // combiner. `f64::max`/`min` (and the method forms) are
            // associative+commutative on non-NaN data and stay allowed.
            if name == "fold" && Self::is_method(file, i) && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                let seed_is_float = toks.get(i + 2).is_some_and(|t| match &t.kind {
                    TokenKind::Num(s) => {
                        s.contains('.') || s.contains("f64") || s.contains("f32")
                    }
                    _ => false,
                });
                if !seed_is_float {
                    continue;
                }
                // Tokens of the second argument: from the `,` after the
                // seed to the closing `)`.
                let mut j = i + 3;
                let mut arg2 = Vec::new();
                let mut depth = 0i32;
                let mut in_second = false;
                while j < toks.len() {
                    let tk = &toks[j];
                    match tk.kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                        TokenKind::Punct(')') | TokenKind::Punct(']') if depth == 0 => break,
                        TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                        TokenKind::Punct(',') if depth == 0 => {
                            in_second = true;
                            j += 1;
                            continue;
                        }
                        _ => {}
                    }
                    if in_second {
                        if let Some(id) = tk.ident() {
                            arg2.push(id.to_string());
                        }
                    }
                    j += 1;
                }
                let order_insensitive = matches!(
                    arg2.last().map(String::as_str),
                    Some("max") | Some("min") | Some("maximum") | Some("minimum")
                );
                if !order_insensitive {
                    findings.push(Finding {
                        lint: self.name(),
                        rel_path: file.rel_path.clone(),
                        line: t.line,
                        col: t.col,
                        message: "float-seeded `fold()` with an order-sensitive combiner"
                            .to_string(),
                        note: "golden files are bit-exact in accumulated f64 time; make the \
                               accumulation order explicit with an indexed loop, or use the \
                               order-insensitive f64::max/min combiners (DESIGN.md §13)",
                    });
                }
            }
        }
        findings
    }
}
