//! `fastpath_without_equiv`: use of a fast-path internal in a function
//! that carries no sampled `equiv_reference*` replay.
//!
//! PRs 3–4 earned the simulator's speed by pairing every fast path with
//! the frozen per-element reference walk: a debug-build sampled replay
//! (`equiv_reference` / `equiv_reference_batch`) re-executes a slice of
//! the access stream on a clone and asserts bit-identical state. That
//! pairing is the entire licence for the fast code to exist. A future
//! entry point that reaches `probe_fast_ext`/`batch_walk`/... without a
//! replay quietly re-opens the gap between the fast and reference cost
//! models.

use crate::lints::{is_production_src, Finding, Lint, WorkspaceCtx};
use crate::source::SourceFile;

/// The fast-path internals whose use demands an equivalence replay.
const TRIGGERS: &[&str] =
    &["probe_fast_ext", "probe_fast", "install_fast", "sweep_hits", "sweep_l2_refill", "batch_walk"];

pub struct FastpathWithoutEquiv;

impl Lint for FastpathWithoutEquiv {
    fn name(&self) -> &'static str {
        "fastpath_without_equiv"
    }

    fn description(&self) -> &'static str {
        "fast-path internal used in a function without a sampled equiv_reference* replay"
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        is_production_src(rel_path)
    }

    fn check(&self, file: &SourceFile, ctx: &WorkspaceCtx) -> Vec<Finding> {
        let mut findings = Vec::new();
        for (i, t) in file.tokens.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            if !TRIGGERS.contains(&name) || !file.is_call(i) {
                continue;
            }
            if file.in_test_code(t.line) {
                continue;
            }
            let Some(enclosing) = file.enclosing_fn(t.line) else { continue };
            // Below the equivalence boundary: the internals may compose
            // each other (`batch_walk` calls `probe_fast_ext`); the replay
            // lives at the boundary function.
            if TRIGGERS.contains(&enclosing.name.as_str())
                || enclosing.name.starts_with("equiv_reference")
            {
                continue;
            }
            // The boundary function itself carries a replay.
            let body = &file.tokens[enclosing.body_start..=enclosing.body_end];
            let has_replay = body
                .iter()
                .any(|t| t.ident().is_some_and(|s| s.starts_with("equiv_reference")));
            if has_replay {
                continue;
            }
            // Calling a function that *contains* the replay (e.g.
            // `batch_walk`) is safe: the discipline travels with the
            // callee.
            if ctx.equiv_checked_fns.iter().any(|f| f == name) {
                continue;
            }
            findings.push(Finding {
                lint: self.name(),
                rel_path: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "fast-path internal `{name}()` used in `{}` without a sampled \
                     `equiv_reference*` replay in scope",
                    enclosing.name
                ),
                note: "every fast path must be bit-exact against the frozen reference walk; \
                       add a debug-sampled equiv_reference/equiv_reference_batch replay to \
                       this function, or route through an entry point that has one \
                       (DESIGN.md §10, §13)",
            });
        }
        findings
    }
}
