//! `untimed_outside_setup`: a `*_untimed` Machine API call outside a
//! setup/allocation-phase function.
//!
//! The untimed accessors move data without charging the cost model. They
//! exist for experiment *setup* (filling input arrays, laying out golden
//! state) — a stray untimed access inside a timed phase silently deletes
//! memory-system cost from the reproduction and no dynamic check can tell,
//! because the run still sorts correctly.

use crate::lints::{is_production_src, Finding, Lint, WorkspaceCtx};
use crate::source::SourceFile;

pub struct UntimedOutsideSetup;

impl Lint for UntimedOutsideSetup {
    fn name(&self) -> &'static str {
        "untimed_outside_setup"
    }

    fn description(&self) -> &'static str {
        "*_untimed Machine API call outside setup_*/alloc* functions"
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        is_production_src(rel_path)
    }

    fn check(&self, file: &SourceFile, _ctx: &WorkspaceCtx) -> Vec<Finding> {
        let mut findings = Vec::new();
        for (i, t) in file.tokens.iter().enumerate() {
            let Some(name) = t.ident() else { continue };
            if !name.ends_with("_untimed") || !file.is_call(i) {
                continue;
            }
            if file.in_test_code(t.line) {
                continue;
            }
            let enclosing = file.enclosing_fn(t.line);
            let exempt = enclosing.is_some_and(|f| {
                // Setup/alloc-phase functions may stage data untimed; the
                // untimed API's own implementation layer is exempt too.
                f.name.starts_with("setup")
                    || f.name.starts_with("alloc")
                    || f.name.ends_with("_untimed")
            });
            if exempt {
                continue;
            }
            findings.push(Finding {
                lint: self.name(),
                rel_path: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{name}()` called outside a `setup_*`/`alloc*` function; untimed data \
                     movement in a timed phase silently deletes cost from the model"
                ),
                note: "move the call into the setup/alloc phase, or charge the movement \
                       explicitly (touch_run/dma_copy) and add a justified \
                       `// ccsort-lints: allow(untimed_outside_setup) -- ...` (DESIGN.md §13)",
            });
        }
        findings
    }
}
