//! `nondeterministic_iteration`: `HashMap`/`HashSet` in the crates whose
//! behaviour reaches observables.
//!
//! `std` hash collections iterate in randomized order (SipHash with a
//! per-process seed). In `crates/{machine,core,models,bench,service}` — the crates
//! whose control flow decides simulated times, event counts, and emitted
//! artefact order — any iteration over one is a nondeterminism bomb: it
//! may pass every test locally and still reorder a golden file on another
//! machine. The lint flags the *types* (not just iteration sites), because
//! the cheap time to switch to `BTreeMap`/`BTreeSet` or a sorted Vec is
//! before the map leaks into an iteration path. Lookup-only maps that
//! demonstrably never iterate may carry a justified allow.

use crate::lints::{Finding, Lint, WorkspaceCtx};
use crate::source::SourceFile;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

pub struct NondeterministicIteration;

impl Lint for NondeterministicIteration {
    fn name(&self) -> &'static str {
        "nondeterministic_iteration"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet in observable-affecting crates (machine, core, models, bench, service)"
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        // steal.rs rides along: the work-stealing queue decides which worker
        // permutes which chunk, and any hash-ordered choice there would make
        // the victim-selection (and thus contention patterns) seed-dependent.
        // crates/service too: the batcher's claim order decides which requests
        // share a batch, and the deterministic drain tests (and svcbench's
        // coalescing measurements) rely on that order being reproducible.
        [
            "crates/machine/src/",
            "crates/core/src/",
            "crates/models/src/",
            "crates/bench/src/",
            "crates/service/src/",
        ]
        .iter()
        .any(|p| rel_path.starts_with(p))
            || rel_path == "crates/parallel/src/steal.rs"
    }

    fn check(&self, file: &SourceFile, _ctx: &WorkspaceCtx) -> Vec<Finding> {
        let mut findings = Vec::new();
        for t in &file.tokens {
            let Some(name) = t.ident() else { continue };
            if !HASH_TYPES.contains(&name) || file.in_test_code(t.line) {
                continue;
            }
            findings.push(Finding {
                lint: self.name(),
                rel_path: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{name}` in an observable-affecting crate: iteration order is randomized \
                     per process"
                ),
                note: "use BTreeMap/BTreeSet or collect-and-sort before iterating; a \
                       lookup-only map with a deterministic hasher may carry a justified \
                       `// ccsort-lints: allow(nondeterministic_iteration) -- ...` \
                       (DESIGN.md §13)",
            });
        }
        findings
    }
}
