//! `divergent_barrier`: a barrier (or barrier-equivalent collective) that
//! is only reachable under a condition derived from a PE identity.
//!
//! Every PE must reach every barrier. A call guarded by `if me == 0` (or
//! any predicate mentioning a PE id) deadlocks the real threaded runtime
//! and corrupts the simulator's synchronization cost accounting. This is
//! the static companion of the race detector's `inject_missing_barrier`
//! fault injection: the dynamic detector proves a *missed* barrier fires a
//! report, this lint makes the divergence unwritable in the first place.

use crate::lints::{is_production_src, Finding, Lint, WorkspaceCtx};
use crate::source::SourceFile;
use crate::lexer::TokenKind;

/// Synchronization calls every PE must reach.
const BARRIER_CALLS: &[&str] = &["barrier", "subset_barrier", "barrier_subset", "publish_done"];

/// Identifiers that denote a PE identity in this codebase's idiom.
const PE_IDENTS: &[&str] =
    &["me", "pe", "rank", "my_pe", "my_rank", "pe_id", "rank_id", "tid", "leader"];

pub struct DivergentBarrier;

impl Lint for DivergentBarrier {
    fn name(&self) -> &'static str {
        "divergent_barrier"
    }

    fn description(&self) -> &'static str {
        "barrier/subset_barrier/publish_done reachable only under a PE-id-derived condition"
    }

    fn applies_to(&self, rel_path: &str) -> bool {
        is_production_src(rel_path)
    }

    fn check(&self, file: &SourceFile, _ctx: &WorkspaceCtx) -> Vec<Finding> {
        let mut findings = Vec::new();
        let toks = &file.tokens;

        // Stack of open conditional blocks: (pe_cond, is_open_brace_depth).
        // Entries are pushed when an `if`/`while`/`match` condition ends at
        // its `{`, popped at the matching `}`. `else` blocks inherit the
        // popped frame's pe-ness.
        struct Frame {
            pe_cond: bool,
        }
        let mut cond_stack: Vec<Option<Frame>> = Vec::new(); // None = plain `{`
        let mut pending_else_pe: Option<bool> = None;

        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            match &t.kind {
                TokenKind::Ident(kw) if kw == "if" || kw == "while" || kw == "match" => {
                    // Collect condition/scrutinee tokens up to the body `{`
                    // (at paren/bracket depth 0). Closures with braced
                    // bodies inside conditions would cut this short — rare,
                    // and the failure mode is a missed match, not a false
                    // positive.
                    let mut depth = 0i32;
                    let mut j = i + 1;
                    let mut pe_cond = pending_else_pe.take().unwrap_or(false);
                    while j < toks.len() {
                        match &toks[j].kind {
                            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                            TokenKind::Punct('{') if depth <= 0 => break,
                            TokenKind::Punct(';') if depth <= 0 => break, // `while let ... ;`? bail
                            TokenKind::Ident(id) if PE_IDENTS.contains(&id.as_str()) => {
                                pe_cond = true;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|t| t.is_punct('{')) {
                        cond_stack.push(Some(Frame { pe_cond }));
                        i = j + 1;
                        continue;
                    }
                    i = j + 1;
                }
                TokenKind::Punct('{') => {
                    // `else {` inherits; everything else is neutral.
                    let inherited = pending_else_pe.take();
                    cond_stack.push(inherited.map(|pe_cond| Frame { pe_cond }));
                    i += 1;
                }
                TokenKind::Punct('}') => {
                    let popped = cond_stack.pop().flatten();
                    // An `else` right after a conditional block keeps the
                    // branch's pe-ness alive for the next block or `if`.
                    if toks.get(i + 1).is_some_and(|t| t.is_ident("else")) {
                        pending_else_pe = Some(popped.map(|f| f.pe_cond).unwrap_or(false));
                        i += 2; // skip `}` and `else`
                        continue;
                    }
                    i += 1;
                }
                TokenKind::Ident(name)
                    if BARRIER_CALLS.contains(&name.as_str()) && file.is_call(i) =>
                {
                    let under_pe_cond =
                        cond_stack.iter().flatten().any(|f| f.pe_cond);
                    if under_pe_cond && !file.in_test_code(t.line) {
                        // The barrier *implementations* layer on each other
                        // (e.g. `barrier` → detector `barrier`); conditions
                        // inside them are cost-model internals, not SPMD
                        // control flow.
                        let impl_layer = file
                            .enclosing_fn(t.line)
                            .is_some_and(|f| {
                                f.name.contains("barrier") || f.name == "publish_done"
                            });
                        if !impl_layer {
                            findings.push(Finding {
                                lint: self.name(),
                                rel_path: file.rel_path.clone(),
                                line: t.line,
                                col: t.col,
                                message: format!(
                                    "`{name}()` is only reachable under a condition derived \
                                     from a PE id; every PE must reach every barrier"
                                ),
                                note: "a PE-dependent barrier deadlocks the threaded runtime and \
                                       corrupts simulated SYNC accounting (DESIGN.md §13); \
                                       restructure so the collective is unconditional, or hoist \
                                       the PE-dependent work out of the guarded block",
                            });
                        }
                    }
                    i += 1;
                }
                _ => {
                    pending_else_pe = None;
                    i += 1;
                }
            }
        }
        findings
    }
}
