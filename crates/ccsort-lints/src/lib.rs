//! # ccsort-lints
//!
//! Repo-specific static lints that make the simulator's cross-cutting
//! conventions *unwritable* instead of merely audited. The dynamic rigs —
//! the FastTrack race detector, the differential audit oracle, the sampled
//! `equiv_reference` replays — catch violations after they execute and
//! only on swept inputs; these five lints reject them at review time, on
//! every path:
//!
//! | lint | invariant |
//! |------|-----------|
//! | `divergent_barrier` | every PE reaches every barrier |
//! | `untimed_outside_setup` | untimed data movement stays in setup/alloc phases |
//! | `fastpath_without_equiv` | every fast path pairs with a sampled reference replay |
//! | `float_reassociation` | f64 time accumulation order is explicit in machine/bench/service |
//! | `nondeterministic_iteration` | no randomized-order collections in observable crates |
//!
//! ## Why not crates.io dylint
//!
//! This is a [dylint](https://github.com/trailofbits/dylint)-style suite —
//! per-repo lints, UI fixtures, a `cargo dylint --all` entry point, allow
//! directives with mandatory justifications — but it deliberately does not
//! link `rustc_private`. The build environments this repo must gate in
//! (offline containers without `rustc-dev` or registry access) cannot
//! build `dylint_linting`, and a correctness gate that only runs where the
//! network cooperates is not a gate. Instead the crate carries a small
//! Rust lexer ([`lexer`]) and structural scanner ([`source`]) — ~zero
//! dependencies, builds in seconds — and matches token/structure patterns
//! tuned to this codebase's idiom. The trade is explicit: these are
//! heuristic matchers, not type-aware HIR passes, so each lint documents
//! its known blind spots and every suppression must carry a written
//! justification that survives review.
//!
//! ## Running
//!
//! The binary is named `cargo-dylint`, so once `target/debug` (or any
//! install dir) is on `PATH`, the standard invocation works verbatim:
//!
//! ```text
//! cargo build -p ccsort-lints
//! PATH="$(pwd)/target/debug:$PATH" cargo dylint --all
//! ```
//!
//! Exit status 0 means clean; findings exit 1. `--list` names the lints.
//! In GitHub Actions the driver auto-emits `::error` annotations.
//!
//! ## Suppressing
//!
//! ```text
//! // ccsort-lints: allow(<lint>) -- <justification, mandatory>
//! // ccsort-lints: allow-file(<lint>) -- <justification, mandatory>
//! ```
//!
//! A directive applies to its own line, the next line, or the whole
//! enclosing function; `allow-file` to the file. Unjustified, unknown, or
//! *unused* directives are errors — an allow must earn its keep.

pub mod driver;
pub mod lexer;
pub mod lints;
pub mod source;

pub use driver::{find_workspace_root, render, run_files, run_workspace, RunReport};
pub use lints::{all_lints, Finding};
