//! `cargo dylint` entry point: cargo resolves the subcommand to a binary
//! named `cargo-dylint` on PATH and invokes it as
//! `cargo-dylint dylint <args...>`. Direct invocation works too.
//!
//! Recognized arguments (all others are accepted and ignored so that
//! upstream cargo-dylint invocations like `--all --workspace` run
//! unmodified): `--all`, `--list`, `--github`, `--root <dir>`.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use ccsort_lints::{all_lints, find_workspace_root, render, run_workspace};

fn main() -> ExitCode {
    let mut args = env::args().skip(1).peekable();
    // Swallow the subcommand name when invoked via `cargo dylint`.
    if args.peek().map(String::as_str) == Some("dylint") {
        args.next();
    }

    let mut root: Option<PathBuf> = None;
    let mut github = env::var_os("GITHUB_ACTIONS").is_some();
    let mut list = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--list" => list = true,
            "--github" => github = true,
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("error: --root needs a directory");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            "--all" | "--workspace" | "--" => {} // the suite always runs all lints
            other => {
                // Permissive: upstream cargo-dylint flags we don't model.
                eprintln!("note: ignoring unrecognized argument `{other}`");
            }
        }
    }

    if list {
        for lint in all_lints() {
            println!("{:28} {}", lint.name(), lint.description());
        }
        return ExitCode::SUCCESS;
    }

    let root = match root.or_else(|| {
        env::current_dir().ok().and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate a workspace root (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };

    let report = run_workspace(&root);
    print!("{}", render(&report, github));
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
