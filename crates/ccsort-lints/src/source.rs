//! Structural model of one source file: the token stream plus just enough
//! item structure for the lints — function spans (with names and test
//! status), `#[cfg(test)]` regions, and `ccsort-lints:` allow directives.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// A function item: name, the line of its `fn` keyword, and the line range
/// of its body (inclusive). Trait-method signatures without bodies are not
/// recorded.
#[derive(Debug, Clone)]
pub struct Function {
    pub name: String,
    pub start_line: u32,
    pub end_line: u32,
    /// Index into the token stream of the body's opening `{`.
    pub body_start: usize,
    /// Index of the matching `}`.
    pub body_end: usize,
    /// True inside `#[cfg(test)]` regions or for `#[test]`/`#[bench]` fns.
    pub is_test: bool,
}

/// One `// ccsort-lints: allow(<lint>) -- <justification>` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    pub lint: String,
    pub line: u32,
    pub file_level: bool,
    pub justification: String,
}

/// A parsed source file ready for linting.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub functions: Vec<Function>,
    pub directives: Vec<Directive>,
    /// Line ranges covered by `#[cfg(test)]` modules/items.
    test_spans: Vec<(u32, u32)>,
}

/// The directive marker scanned for in comments.
pub const DIRECTIVE_MARKER: &str = "ccsort-lints:";

impl SourceFile {
    pub fn parse(rel_path: &str, src: &str) -> SourceFile {
        let (tokens, comments) = lex(src);
        let directives = parse_directives(&comments);
        let (functions, test_spans) = scan_items(&tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            tokens,
            comments,
            functions,
            directives,
            test_spans,
        }
    }

    /// Is `line` inside test-only code (`#[cfg(test)]` region or a
    /// `#[test]` function)?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| (a..=b).contains(&line))
            || self
                .functions
                .iter()
                .any(|f| f.is_test && (f.start_line..=f.end_line).contains(&line))
    }

    /// Innermost function whose span contains `line`.
    pub fn enclosing_fn(&self, line: u32) -> Option<&Function> {
        self.functions
            .iter()
            .filter(|f| (f.start_line..=f.end_line).contains(&line))
            .min_by_key(|f| f.end_line - f.start_line)
    }

    /// Token-index → is this identifier a *call* (followed by `(` and not
    /// preceded by `fn`, i.e. not a definition)?
    pub fn is_call(&self, idx: usize) -> bool {
        if self.tokens[idx].ident().is_none() {
            return false;
        }
        let next_is_paren = self.tokens.get(idx + 1).is_some_and(|t| t.is_punct('('));
        let prev_is_fn = idx > 0 && self.tokens[idx - 1].is_ident("fn");
        next_is_paren && !prev_is_fn
    }
}

/// Parse allow directives out of the comment list. Grammar (whitespace
/// lenient, separator before the justification may be `--`, `—`, or `:`):
///
/// ```text
/// // ccsort-lints: allow(lint_name) -- why this is sound here
/// // ccsort-lints: allow-file(lint_name) -- why, for the whole file
/// ```
///
/// The justification may wrap onto immediately-following comment lines
/// (the normal 80-column idiom). A directive with a missing/too-short
/// justification, or one naming an unknown lint, is itself reported by
/// the driver.
fn parse_directives(comments: &[Comment]) -> Vec<Directive> {
    let mut out = Vec::new();
    for (ci, c) in comments.iter().enumerate() {
        let Some(pos) = c.text.find(DIRECTIVE_MARKER) else { continue };
        let rest = c.text[pos + DIRECTIVE_MARKER.len()..].trim_start();
        let (file_level, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            // Marker present but malformed — record it with an empty lint
            // name so the driver flags it rather than silently ignoring.
            out.push(Directive {
                lint: String::new(),
                line: c.line,
                file_level: false,
                justification: String::new(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Directive {
                lint: String::new(),
                line: c.line,
                file_level,
                justification: String::new(),
            });
            continue;
        };
        let lint = rest[..close].trim().to_string();
        let mut justification = rest[close + 1..]
            .trim_start()
            .trim_start_matches(['-', '—', ':', ' '])
            .trim()
            .to_string();
        // Continuation: comment lines directly below the directive extend
        // the justification, until a gap or another directive.
        for (k, cont) in comments[ci + 1..].iter().enumerate() {
            let expect_line = c.line + 1 + k as u32;
            if cont.line != expect_line || cont.text.contains(DIRECTIVE_MARKER) {
                break;
            }
            justification.push(' ');
            justification.push_str(cont.text.trim());
        }
        out.push(Directive { lint, line: c.line, file_level, justification });
    }
    out
}

/// One pass over the token stream collecting function spans and
/// `#[cfg(test)]` regions. Attribute text is tracked so `#[test]`,
/// `#[bench]` and `#[cfg(test)]`/`#[cfg(all(test, ...))]` mark the item
/// they precede.
fn scan_items(tokens: &[Token]) -> (Vec<Function>, Vec<(u32, u32)>) {
    let mut functions: Vec<Function> = Vec::new();
    let mut test_spans: Vec<(u32, u32)> = Vec::new();

    // Open frames: (kind, depth at which the body `{` was seen, fn index
    // or test-span index).
    enum Frame {
        Fn(usize),
        TestRegion(usize),
        Other,
    }
    let mut frames: Vec<Frame> = Vec::new();
    let mut depth: u32 = 0;

    // Pending attribute state: set when `#[...]` items are seen, consumed
    // by the next `fn`/`mod`/`impl` keyword, cleared by statement tokens.
    let mut pending_test_attr = false;
    let mut pending_cfg_test = false;
    let mut inherited_test = 0usize; // nesting count of test regions

    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Punct('#') => {
                // Attribute: `#[...]` or `#![...]`. Collect its tokens.
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is_punct('[')) {
                    let mut bdepth = 0i32;
                    let start = j;
                    while j < tokens.len() {
                        if tokens[j].is_punct('[') {
                            bdepth += 1;
                        } else if tokens[j].is_punct(']') {
                            bdepth -= 1;
                            if bdepth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    let attr: Vec<&str> =
                        tokens[start..=j.min(tokens.len() - 1)].iter().filter_map(|t| t.ident()).collect();
                    match attr.first().copied() {
                        Some("test") | Some("bench") => pending_test_attr = true,
                        Some("cfg") | Some("cfg_attr") if attr.contains(&"test") => {
                            pending_cfg_test = true
                        }
                        _ => {}
                    }
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            TokenKind::Ident(kw) if kw == "fn" => {
                // Find the name, then the body `{` (or `;` for a bodiless
                // signature). Between `)` and `{` there may be `-> T` and
                // where clauses; none of those contain braces in this
                // codebase's style, so the next `{` at paren depth 0 is
                // the body.
                let name = tokens.get(i + 1).and_then(|t| t.ident()).unwrap_or("").to_string();
                let start_line = t.line;
                let mut j = i + 1;
                let mut pdepth = 0i32;
                let mut body = None;
                while j < tokens.len() {
                    match tokens[j].kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') => pdepth += 1,
                        TokenKind::Punct(')') | TokenKind::Punct(']') => pdepth -= 1,
                        TokenKind::Punct('{') if pdepth == 0 => {
                            body = Some(j);
                            break;
                        }
                        TokenKind::Punct(';') if pdepth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                let is_test = pending_test_attr || pending_cfg_test || inherited_test > 0;
                pending_test_attr = false;
                pending_cfg_test = false;
                if let Some(body_start) = body {
                    functions.push(Function {
                        name,
                        start_line,
                        end_line: 0,
                        body_start,
                        body_end: 0,
                        is_test,
                    });
                    // Fast-forward to the body brace; the `{` case below
                    // will push the frame.
                    frames.push(Frame::Fn(functions.len() - 1));
                    depth += 1;
                    i = body_start + 1;
                    continue;
                }
                i = j + 1;
            }
            TokenKind::Ident(kw) if kw == "mod" || kw == "impl" || kw == "trait" => {
                // A `#[cfg(test)] mod`/`impl` opens a test region at its
                // body brace.
                let want_test_region = pending_cfg_test;
                pending_test_attr = false;
                pending_cfg_test = false;
                let start_line = t.line;
                let mut j = i + 1;
                let mut pdepth = 0i32;
                while j < tokens.len() {
                    match tokens[j].kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') => pdepth += 1,
                        TokenKind::Punct(')') | TokenKind::Punct(']') => pdepth -= 1,
                        TokenKind::Punct('{') if pdepth == 0 => break,
                        TokenKind::Punct(';') if pdepth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if tokens.get(j).map(|t| t.is_punct('{')).unwrap_or(false) {
                    if want_test_region {
                        test_spans.push((start_line, u32::MAX));
                        frames.push(Frame::TestRegion(test_spans.len() - 1));
                        inherited_test += 1;
                    } else {
                        frames.push(Frame::Other);
                    }
                    depth += 1;
                    i = j + 1;
                    continue;
                }
                i = j + 1;
            }
            TokenKind::Punct('{') => {
                frames.push(Frame::Other);
                depth += 1;
                i += 1;
            }
            TokenKind::Punct('}') => {
                match frames.pop() {
                    Some(Frame::Fn(fi)) => {
                        functions[fi].end_line = t.line;
                        functions[fi].body_end = i;
                    }
                    Some(Frame::TestRegion(si)) => {
                        test_spans[si].1 = t.line;
                        inherited_test = inherited_test.saturating_sub(1);
                    }
                    _ => {}
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            TokenKind::Ident(kw)
                if matches!(
                    kw.as_str(),
                    "pub" | "unsafe" | "const" | "extern" | "async" | "default" | "crate"
                ) =>
            {
                // Visibility/qualifier tokens between attributes and the
                // item keyword: keep pending attrs alive.
                i += 1;
            }
            TokenKind::Punct('(') | TokenKind::Punct(')') | TokenKind::Lit => {
                // `pub(crate)` parens and doc strings: neutral.
                i += 1;
            }
            _ => {
                // Any other statement token: pending attrs belong to
                // something we don't model (struct, use, let...) — drop
                // them. (`#[cfg(test)]` on a `use` must not leak onto the
                // next fn.)
                pending_test_attr = false;
                pending_cfg_test = false;
                i += 1;
            }
        }
    }

    // Unterminated frames (shouldn't happen on compiling code): close at
    // the last line.
    let last_line = tokens.last().map(|t| t.line).unwrap_or(1);
    for f in &mut functions {
        if f.end_line == 0 {
            f.end_line = last_line;
            f.body_end = tokens.len().saturating_sub(1);
        }
    }
    for s in &mut test_spans {
        if s.1 == u32::MAX {
            s.1 = last_line;
        }
    }
    (functions, test_spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_spans_and_names() {
        let f = SourceFile::parse(
            "x.rs",
            "pub fn alpha(x: u32) -> u32 {\n    x + 1\n}\n\nfn beta() {\n    let y = 2;\n}\n",
        );
        let names: Vec<&str> = f.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        assert_eq!(f.functions[0].start_line, 1);
        assert_eq!(f.functions[0].end_line, 3);
        assert_eq!(f.functions[1].start_line, 5);
        assert_eq!(f.enclosing_fn(6).unwrap().name, "beta");
    }

    #[test]
    fn nested_fn_resolves_to_innermost() {
        let f = SourceFile::parse(
            "x.rs",
            "fn outer() {\n    fn inner() {\n        let a = 1;\n    }\n    let b = 2;\n}\n",
        );
        assert_eq!(f.enclosing_fn(3).unwrap().name, "inner");
        assert_eq!(f.enclosing_fn(5).unwrap().name, "outer");
    }

    #[test]
    fn cfg_test_region_marks_functions() {
        let f = SourceFile::parse(
            "x.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { prod(); }\n    fn helper() {}\n}\n",
        );
        assert!(!f.functions.iter().find(|x| x.name == "prod").unwrap().is_test);
        assert!(f.functions.iter().find(|x| x.name == "t").unwrap().is_test);
        assert!(f.functions.iter().find(|x| x.name == "helper").unwrap().is_test);
        assert!(f.in_test_code(5));
        assert!(!f.in_test_code(1));
    }

    #[test]
    fn cfg_test_fn_without_mod() {
        let f = SourceFile::parse("x.rs", "#[cfg(test)]\npub(crate) fn probe_helper() {}\nfn real() {}\n");
        assert!(f.functions.iter().find(|x| x.name == "probe_helper").unwrap().is_test);
        assert!(!f.functions.iter().find(|x| x.name == "real").unwrap().is_test);
    }

    #[test]
    fn cfg_test_on_use_does_not_leak() {
        let f = SourceFile::parse("x.rs", "#[cfg(test)]\nuse std::fmt;\nfn real() {}\n");
        assert!(!f.functions.iter().find(|x| x.name == "real").unwrap().is_test);
    }

    #[test]
    fn directives_parse_with_justification() {
        let f = SourceFile::parse(
            "x.rs",
            "// ccsort-lints: allow(divergent_barrier) -- fault injection needs it\nfn x() {}\n// ccsort-lints: allow-file(nondeterministic_iteration): lookup-only map\n",
        );
        assert_eq!(f.directives.len(), 2);
        assert_eq!(f.directives[0].lint, "divergent_barrier");
        assert!(!f.directives[0].file_level);
        assert!(f.directives[0].justification.contains("fault injection"));
        assert!(f.directives[1].file_level);
    }

    #[test]
    fn malformed_directive_is_recorded_empty() {
        let f = SourceFile::parse("x.rs", "// ccsort-lints: allowthing\n");
        assert_eq!(f.directives.len(), 1);
        assert!(f.directives[0].lint.is_empty());
    }

    #[test]
    fn call_vs_definition() {
        let f = SourceFile::parse("x.rs", "fn barrier() { other.barrier(); barrier; }\n");
        // Token layout: fn barrier ( ) { other . barrier ( ) ; barrier ; }
        let idxs: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("barrier"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(idxs.len(), 3);
        assert!(!f.is_call(idxs[0]), "definition is not a call");
        assert!(f.is_call(idxs[1]), "method call is a call");
        assert!(!f.is_call(idxs[2]), "bare path is not a call");
    }

    #[test]
    fn trait_method_signatures_without_bodies_are_skipped() {
        let f = SourceFile::parse(
            "x.rs",
            "trait T {\n    fn sig(&self);\n    fn with_body(&self) { self.sig(); }\n}\n",
        );
        let names: Vec<&str> = f.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_body"]);
    }
}
