//! A minimal Rust lexer: just enough to token-match lint patterns without
//! ever confusing string/comment contents for code.
//!
//! The lints in this crate work on token sequences, so the lexer's one hard
//! job is classification: `"copy_untimed exit"` inside a string literal and
//! `// m.barrier()` inside a comment must never look like calls. Everything
//! else (exact numeric values, operator jamming) is irrelevant to the lint
//! patterns and kept deliberately simple: operators are emitted as
//! single-character punctuation tokens and matched as sequences.

/// One lexed token with its source position (1-based line, column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the scanner distinguishes keywords by text).
    Ident(String),
    /// Numeric literal, verbatim (`0x1F`, `1_000`, `2.5e-3`, `0.0_f64`).
    Num(String),
    /// String/char/byte literal of any flavour; contents dropped.
    Lit,
    /// Lifetime (`'a`, `'static`); distinguished from char literals.
    Lifetime,
    /// Single punctuation character (`{`, `.`, `:`, `<`, ...).
    Punct(char),
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(t) if t == s)
    }
}

/// A comment with its position; `text` excludes the delimiters. Collected
/// separately from the token stream so directive comments
/// (`// ccsort-lints: allow(...)`) can be scanned without polluting
/// token-sequence matching.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

/// Lex `src` into (tokens, comments). Never fails: unrecognized bytes are
/// skipped (the workspace this runs on must already compile, so anything
/// surprising is at worst a missed match, not a crash).
pub fn lex(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let b = src.as_bytes();
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    // Advance over `n` bytes, updating line/col.
    macro_rules! bump {
        ($n:expr) => {{
            for _ in 0..$n {
                if i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }

    while i < b.len() {
        let c = b[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if c.is_ascii_whitespace() {
            bump!(1);
            continue;
        }

        // Line comment (also doc comments `///`, `//!`).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                bump!(1);
            }
            comments.push(Comment {
                text: src[start..i].trim_start_matches('/').trim_start_matches('!').to_string(),
                line: tline,
            });
            continue;
        }

        // Block comment, nested.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            bump!(2);
            let mut depth = 1;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    bump!(2);
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            comments.push(Comment { text: src[start..i].to_string(), line: tline });
            continue;
        }

        // Raw strings: r"..." / r#"..."# (and br / cr prefixes).
        let raw_prefix_len = raw_string_prefix(&src[i..]);
        if raw_prefix_len > 0 {
            bump!(raw_prefix_len); // up to and including the opening quote
            // Count hashes in the prefix we just consumed.
            let hashes = src[i - raw_prefix_len..i].bytes().filter(|&x| x == b'#').count();
            let closer: String =
                std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
            match src[i..].find(&closer) {
                Some(off) => bump!(off + closer.len()),
                None => bump!(src.len() - i), // unterminated; swallow the rest
            }
            tokens.push(Token { kind: TokenKind::Lit, line: tline, col: tcol });
            continue;
        }

        // Plain strings: "..." (and b"/c" prefixed; the prefix lexes as an
        // ident first, which is harmless for our patterns).
        if c == b'"' {
            bump!(1);
            while i < b.len() && b[i] != b'"' {
                if b[i] == b'\\' {
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            bump!(1); // closing quote
            tokens.push(Token { kind: TokenKind::Lit, line: tline, col: tcol });
            continue;
        }

        // `'` — char literal or lifetime. Lifetime when followed by an
        // ident char and the char after the ident is not `'`.
        if c == b'\'' {
            let rest = &b[i + 1..];
            let is_lifetime = match rest.first() {
                Some(&x) if x == b'_' || x.is_ascii_alphabetic() => {
                    let mut j = 1;
                    while j < rest.len() && (rest[j] == b'_' || rest[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    rest.get(j) != Some(&b'\'')
                }
                _ => false,
            };
            if is_lifetime {
                bump!(1);
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    bump!(1);
                }
                tokens.push(Token { kind: TokenKind::Lifetime, line: tline, col: tcol });
            } else {
                // Char literal: 'x', '\n', '\'', '\u{1F600}'.
                bump!(1);
                while i < b.len() && b[i] != b'\'' {
                    if b[i] == b'\\' {
                        bump!(2);
                    } else {
                        bump!(1);
                    }
                }
                bump!(1);
                tokens.push(Token { kind: TokenKind::Lit, line: tline, col: tcol });
            }
            continue;
        }

        // Identifier / keyword.
        if c == b'_' || c.is_ascii_alphabetic() {
            let start = i;
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                bump!(1);
            }
            tokens.push(Token {
                kind: TokenKind::Ident(src[start..i].to_string()),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Number: digits, underscores, dots (not `..`), exponents, type
        // suffixes, hex/oct/bin prefixes.
        if c.is_ascii_digit() {
            let start = i;
            bump!(1);
            while i < b.len() {
                let x = b[i];
                if x == b'_' || x.is_ascii_alphanumeric() {
                    // Covers hex digits, `e`/`E` exponents, `f64` suffixes.
                    bump!(1);
                } else if x == b'.' && i + 1 < b.len() && b[i + 1] != b'.' {
                    // A decimal point, but never consume a `..` range.
                    // (`1.foo()` is method syntax on a literal — absent in
                    // this codebase; mislexing it would only over-extend
                    // one Num token.)
                    bump!(1);
                } else if (x == b'+' || x == b'-') && matches!(b[i - 1], b'e' | b'E') {
                    bump!(1); // exponent sign
                } else {
                    break;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Num(src[start..i].to_string()),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Everything else: single punctuation char.
        bump!(1);
        tokens.push(Token { kind: TokenKind::Punct(c as char), line: tline, col: tcol });
    }

    (tokens, comments)
}

/// If `s` starts a raw string literal (`r"`, `r#`, `br#`, `cr"` ...),
/// return the byte length of the prefix *including* the opening quote;
/// otherwise 0.
fn raw_string_prefix(s: &str) -> usize {
    let b = s.as_bytes();
    let mut j = 0;
    if matches!(b.first(), Some(&b'b') | Some(&b'c')) {
        j = 1;
    }
    if b.get(j) != Some(&b'r') {
        return 0;
    }
    j += 1;
    let mut k = j;
    while b.get(k) == Some(&b'#') {
        k += 1;
    }
    if b.get(k) == Some(&b'"') {
        k + 1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).0.iter().filter_map(|t| t.ident().map(str::to_string)).collect()
    }

    #[test]
    fn string_contents_are_not_code() {
        // The classic trap: an API name inside a diagnostic string.
        let (toks, _) = lex(r#"debug_assert_hint(q, "copy_untimed exit");"#);
        let names = toks.iter().filter_map(|t| t.ident()).collect::<Vec<_>>();
        assert_eq!(names, vec!["debug_assert_hint", "q"]);
    }

    #[test]
    fn comments_are_collected_not_tokenized() {
        let (toks, comments) = lex("let x = 1; // m.barrier()\n/* fold(0.0) */ let y = 2;");
        assert!(toks.iter().all(|t| !t.is_ident("barrier") && !t.is_ident("fold")));
        assert_eq!(comments.len(), 2);
        assert!(comments[0].text.contains("m.barrier()"));
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = lex("/* outer /* inner */ still */ fn f() {}");
        assert_eq!(comments.len(), 1);
        assert_eq!(idents("/* a /* b */ c */ x"), vec!["x"]);
        assert!(toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let (toks, _) = lex("fn f<'a>(x: &'a u32) { let c = 'b'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::Lit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let (toks, _) = lex(r##"let s = r#"contains "quotes" and barrier()"#; next()"##);
        assert!(toks.iter().any(|t| t.is_ident("next")));
        assert!(!toks.iter().any(|t| t.is_ident("barrier")));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let (toks, _) = lex("for i in 0..10 { sum += 0.5_f64; }");
        let nums: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "10", "0.5_f64"]);
    }

    #[test]
    fn positions_are_tracked() {
        let (toks, _) = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
