//! The suite driver: walk the workspace, run every lint, resolve allow
//! directives, and report.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lints::{all_lints, Finding, WorkspaceCtx};
use crate::source::SourceFile;

/// Outcome of a full suite run.
pub struct RunReport {
    /// Findings that survived suppression, sorted by (path, line, lint).
    pub findings: Vec<Finding>,
    /// Files scanned (workspace-relative paths).
    pub files_scanned: usize,
    /// Directives that suppressed at least one finding.
    pub used_allows: usize,
}

/// Directories under the workspace root whose `src/` trees are linted.
/// The lint crate itself is excluded: its sources and fixtures *name* the
/// patterns being matched.
fn lintable_roots(workspace_root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![workspace_root.join("src")];
    if let Ok(entries) = fs::read_dir(workspace_root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "ccsort-lints"))
            .collect();
        crates.sort();
        for c in crates {
            roots.push(c.join("src"));
        }
    }
    roots.retain(|p| p.is_dir());
    roots
}

/// Recursively collect `.rs` files, sorted for deterministic reporting.
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else { continue };
        for e in entries.filter_map(|e| e.ok()) {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Run the whole suite over `workspace_root`.
pub fn run_workspace(workspace_root: &Path) -> RunReport {
    let mut files = Vec::new();
    for root in lintable_roots(workspace_root) {
        for path in rs_files(&root) {
            let Ok(src) = fs::read_to_string(&path) else { continue };
            let rel = path
                .strip_prefix(workspace_root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::parse(&rel, &src));
        }
    }
    run_files(files)
}

/// Run the suite over already-parsed files (the UI harness enters here).
pub fn run_files(files: Vec<SourceFile>) -> RunReport {
    let ctx = WorkspaceCtx::build(&files);
    let lints = all_lints();
    let known: Vec<&str> = lints.iter().map(|l| l.name()).collect();

    let mut findings: Vec<Finding> = Vec::new();
    let mut used_allows = 0usize;

    for file in &files {
        // Raw findings for this file.
        let mut raw: Vec<Finding> = Vec::new();
        for lint in &lints {
            if lint.applies_to(&file.rel_path) {
                raw.extend(lint.check(file, &ctx));
            }
        }

        // Resolve directives. A directive suppresses findings of its lint
        // (a) file-wide for `allow-file`, (b) on its own or the next line,
        // (c) anywhere inside the function whose body contains it.
        let mut directive_used = vec![false; file.directives.len()];
        raw.retain(|f| {
            for (di, d) in file.directives.iter().enumerate() {
                if d.lint != f.lint {
                    continue;
                }
                let in_scope = d.file_level
                    || f.line == d.line
                    || f.line == d.line + 1
                    || file.enclosing_fn(f.line).is_some_and(|func| {
                        (func.start_line..=func.end_line).contains(&d.line)
                            && (func.start_line..=func.end_line).contains(&f.line)
                    });
                if in_scope {
                    directive_used[di] = true;
                    return false;
                }
            }
            true
        });
        findings.append(&mut raw);

        // Directive hygiene: malformed, unknown-lint, unjustified, or
        // unused directives are findings themselves — an allow must carry
        // its reason and must be earning its keep.
        for (di, d) in file.directives.iter().enumerate() {
            let problem = if d.lint.is_empty() {
                Some("malformed `ccsort-lints:` directive (expected `allow(<lint>) -- <why>`)".to_string())
            } else if !known.contains(&d.lint.as_str()) {
                Some(format!("allow directive names unknown lint `{}`", d.lint))
            } else if d.justification.len() < 8 {
                Some(format!(
                    "allow({}) has no justification; every suppression must say why it is sound",
                    d.lint
                ))
            } else if !directive_used[di] {
                Some(format!("allow({}) suppresses nothing; remove the stale directive", d.lint))
            } else {
                None
            };
            if let Some(message) = problem {
                findings.push(Finding {
                    lint: "lint_directive",
                    rel_path: file.rel_path.clone(),
                    line: d.line,
                    col: 1,
                    message,
                    note: "directive grammar: `// ccsort-lints: allow(<lint>) -- <justification>` \
                           or allow-file(<lint>) for a whole file (DESIGN.md §13)",
                });
            } else {
                used_allows += 1;
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.rel_path.as_str(), a.line, a.lint).cmp(&(b.rel_path.as_str(), b.line, b.lint))
    });
    RunReport { findings, files_scanned: files.len(), used_allows }
}

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(d) = cur {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        cur = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Render findings in rustc style; with `github`, also emit workflow
/// command annotations that GitHub surfaces inline on the PR diff.
pub fn render(report: &RunReport, github: bool) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "error: [{}] {}\n  --> {}:{}:{}\n   = note: {}\n\n",
            f.lint, f.message, f.rel_path, f.line, f.col, f.note
        ));
        if github {
            // One line per finding; GitHub renders these as PR annotations.
            out.push_str(&format!(
                "::error file={},line={},title=ccsort-lints({})::{}\n",
                f.rel_path, f.line, f.lint, f.message
            ));
        }
    }
    out.push_str(&format!(
        "ccsort-lints: {} finding(s) in {} file(s) scanned ({} justified allow(s))\n",
        report.findings.len(),
        report.files_scanned,
        report.used_allows
    ));
    out
}
