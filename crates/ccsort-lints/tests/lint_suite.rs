//! Workspace smoke test: the suite must build, run over the real
//! workspace, and come back clean. This is the same check CI's gating
//! `cargo dylint --all` job performs, wired into `cargo test --workspace`
//! so a violation fails fast locally too.

use std::path::Path;

use ccsort_lints::{render, run_workspace};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
    assert!(root.join("Cargo.toml").is_file(), "workspace root not found at {root:?}");
    let report = run_workspace(root);
    assert!(
        report.findings.is_empty(),
        "ccsort-lints found violations in the workspace:\n{}",
        render(&report, false)
    );
    // Sanity: the walk really covered the workspace (six crates + root),
    // and the committed justified allows are present and in use.
    assert!(
        report.files_scanned >= 40,
        "suspiciously few files scanned ({}) — did the workspace walk break?",
        report.files_scanned
    );
    assert!(
        report.used_allows >= 6,
        "expected the committed justified allows to be found and used, saw {}",
        report.used_allows
    );
}

/// The machine crate's extracted layers — the coherence-protocol seam and
/// the multi-topology interconnect — hold exactly the code these two lints
/// exist for (event-count observables and f64 latency accumulation), so
/// their scope must keep covering the new modules.
#[test]
fn new_machine_layers_are_in_lint_scope() {
    use ccsort_lints::all_lints;
    let mut checked = 0;
    for lint in all_lints() {
        if matches!(lint.name(), "nondeterministic_iteration" | "float_reassociation") {
            for path in ["crates/machine/src/protocol.rs", "crates/machine/src/topology.rs"] {
                assert!(lint.applies_to(path), "{} must cover {path}", lint.name());
            }
            checked += 1;
        }
    }
    assert_eq!(checked, 2, "both lints must exist in the registry");
}
