//! Compiletest-style UI harness: every lint has a `fire.rs` fixture whose
//! `//~ <lint>` markers must be matched *exactly* (same lines, same lints,
//! nothing extra), and a `pass.rs` fixture that must produce zero findings.
//!
//! Fixtures are linted under a synthetic `crates/machine/src/` path so that
//! every lint's crate scope applies.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use ccsort_lints::source::SourceFile;
use ccsort_lints::{all_lints, run_files};

fn ui_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("ui")
}

/// `(line, lint)` pairs — the shape of both the expected-marker set and
/// the actual-finding set.
type Findings = BTreeSet<(u32, String)>;

/// Expected `(line, lint)` pairs from `//~ <lint>` markers.
fn expected_markers(file: &SourceFile) -> Findings {
    file.comments
        .iter()
        .filter_map(|c| {
            let t = c.text.trim();
            t.strip_prefix("~").map(|rest| (c.line, rest.trim().to_string()))
        })
        .collect()
}

fn run_fixture(path: &Path) -> (Findings, Findings) {
    let src = fs::read_to_string(path).unwrap();
    // Synthetic production path inside every lint's scope.
    let file = SourceFile::parse("crates/machine/src/fixture.rs", &src);
    let expected = expected_markers(&file);
    let report = run_files(vec![file]);
    let actual: Findings =
        report.findings.iter().map(|f| (f.line, f.lint.to_string())).collect();
    (expected, actual)
}

#[test]
fn every_lint_has_fire_and_pass_fixtures() {
    for lint in all_lints() {
        let dir = ui_dir().join(lint.name());
        assert!(dir.join("fire.rs").is_file(), "missing ui/{}/fire.rs", lint.name());
        assert!(dir.join("pass.rs").is_file(), "missing ui/{}/pass.rs", lint.name());
    }
}

#[test]
fn fire_fixtures_fire_exactly_on_marked_lines() {
    for lint in all_lints() {
        let path = ui_dir().join(lint.name()).join("fire.rs");
        let (expected, actual) = run_fixture(&path);
        assert!(
            !expected.is_empty(),
            "ui/{}/fire.rs has no //~ markers — a fire fixture must assert findings",
            lint.name()
        );
        assert!(
            expected.iter().any(|(_, l)| l == lint.name()),
            "ui/{}/fire.rs never marks its own lint",
            lint.name()
        );
        assert_eq!(
            expected, actual,
            "ui/{}/fire.rs: marker/finding mismatch (left: expected from //~ markers, \
             right: actual findings)",
            lint.name()
        );
    }
}

#[test]
fn pass_fixtures_stay_clean() {
    for lint in all_lints() {
        let path = ui_dir().join(lint.name()).join("pass.rs");
        let (expected, actual) = run_fixture(&path);
        assert!(
            expected.is_empty(),
            "ui/{}/pass.rs must not carry //~ markers",
            lint.name()
        );
        assert!(
            actual.is_empty(),
            "ui/{}/pass.rs produced findings: {:?}",
            lint.name(),
            actual
        );
    }
}

#[test]
fn unjustified_and_stale_allows_are_findings() {
    let cases = [
        // No justification at all.
        ("fn f() {\n    // ccsort-lints: allow(divergent_barrier)\n    let x = 1;\n}\n", "no justification"),
        // Unknown lint name.
        ("fn f() {\n    // ccsort-lints: allow(no_such_lint) -- some words here\n    let x = 1;\n}\n", "unknown lint"),
        // Justified but suppresses nothing.
        ("fn f() {\n    // ccsort-lints: allow(divergent_barrier) -- stale words here\n    let x = 1;\n}\n", "stale"),
        // Marker present but malformed.
        ("// ccsort-lints: allowthing\n", "malformed"),
    ];
    for (src, what) in cases {
        let report = run_files(vec![SourceFile::parse("crates/machine/src/fixture.rs", src)]);
        assert_eq!(
            report.findings.len(),
            1,
            "{what}: expected exactly one lint_directive finding, got {:?}",
            report.findings
        );
        assert_eq!(report.findings[0].lint, "lint_directive", "{what}");
    }
}

#[test]
fn test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() {\n        let m: HashMap<u32, u32> = HashMap::new();\n        assert!(m.is_empty());\n    }\n}\n";
    let report = run_files(vec![SourceFile::parse("crates/machine/src/fixture.rs", src)]);
    assert!(report.findings.is_empty(), "test-module code must be exempt: {:?}", report.findings);
}
