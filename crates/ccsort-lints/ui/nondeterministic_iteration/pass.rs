// Compile-pass fixture for `nondeterministic_iteration`.

use std::collections::{BTreeMap, BTreeSet};

// Deterministic-by-type collections iterate in key order everywhere.
fn digit_histogram(keys: &[u32]) -> usize {
    let mut counts = BTreeMap::new();
    for &k in keys {
        *counts.entry(k & 0xff).or_insert(0u32) += 1;
    }
    counts.len()
}

fn distinct_homes(homes: &[usize]) -> usize {
    let set: BTreeSet<usize> = homes.iter().copied().collect();
    set.len()
}

// A lookup-only map with a deterministic hasher may stay, with the reason
// written down (the directive binds to its enclosing function).
fn page_index(pages: &[u64]) -> usize {
    // ccsort-lints: allow(nondeterministic_iteration) -- lookup-only index
    // with a fixed multiplicative hasher; never iterated, and a tree would
    // cost O(log n) on the hot path.
    let mut index = std::collections::HashMap::new();
    for (slot, &page) in pages.iter().enumerate() {
        index.insert(page, slot);
    }
    index.get(&0).copied().unwrap_or(pages.len())
}
