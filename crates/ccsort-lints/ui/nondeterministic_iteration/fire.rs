// Compile-fail fixture for `nondeterministic_iteration`: std hash
// collections in observable-affecting code.

use std::collections::HashMap; //~ nondeterministic_iteration
use std::collections::HashSet; //~ nondeterministic_iteration

fn digit_histogram(keys: &[u32]) -> usize {
    let mut counts = HashMap::new(); //~ nondeterministic_iteration
    for &k in keys {
        *counts.entry(k & 0xff).or_insert(0u32) += 1;
    }
    counts.len()
}

fn distinct_homes(homes: &[usize]) -> usize {
    let set: HashSet<usize> = homes.iter().copied().collect(); //~ nondeterministic_iteration
    set.len()
}
