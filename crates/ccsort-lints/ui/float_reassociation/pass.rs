// Compile-pass fixture for `float_reassociation`.

// The required shape: accumulation order pinned by an explicit loop.
fn total_time(times: &[f64]) -> f64 {
    let mut total = 0.0_f64;
    for &t in times {
        total += t;
    }
    total
}

// Max/min folds are order-insensitive (associative + commutative on the
// non-NaN values the simulator produces).
fn slowest(times: &[f64]) -> f64 {
    times.iter().copied().fold(0.0_f64, f64::max)
}

// Integer reductions don't reassociate.
fn total_events(counts: &[u64]) -> u64 {
    counts.iter().sum::<u64>()
}

fn total_len(lens: &[usize]) -> usize {
    let n: usize = lens.iter().sum();
    n
}
