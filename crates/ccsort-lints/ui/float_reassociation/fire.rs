// Compile-fail fixture for `float_reassociation`: implicit-order f64
// reductions over timing values.

fn total_time(times: &[f64]) -> f64 {
    times.iter().sum::<f64>() //~ float_reassociation
}

fn folded_time(times: &[f64]) -> f64 {
    times.iter().fold(0.0, |acc, t| acc + t) //~ float_reassociation
}

fn annotated_binding(times: &[f64]) -> f64 {
    let total: f64 = times.iter().copied().sum(); //~ float_reassociation
    total
}
