// Compile-fail fixture for `fastpath_without_equiv`: fast-path internals
// used by an entry point that carries no sampled reference replay.

struct Cache;
impl Cache {
    fn probe_fast_ext(&mut self) {}
    fn install_fast(&mut self) {}
    fn sweep_hits(&mut self) -> u64 {
        0
    }
}

// A new fast entry point with no equiv_reference* replay anywhere in its
// body: every internal it touches fires.
fn new_streamed_entry(c: &mut Cache) {
    c.sweep_hits(); //~ fastpath_without_equiv
}

fn new_scattered_entry(c: &mut Cache) {
    c.probe_fast_ext(); //~ fastpath_without_equiv
    c.install_fast(); //~ fastpath_without_equiv
}
