// Compile-pass fixture for `fastpath_without_equiv`: the three sanctioned
// shapes — a replay in the same function, composition below the
// equivalence boundary, and calls routed through a replay-carrying entry
// point.

struct Cache;
impl Cache {
    fn probe_fast_ext(&mut self) {}
    fn sweep_hits(&mut self) -> u64 {
        0
    }
}

fn equiv_reference(_c: &Cache) -> u32 {
    0
}
fn equiv_reference_batch(_c: &Cache) -> u32 {
    0
}

// The streamed entry point carries its own sampled replay.
fn touch_run(c: &mut Cache) {
    let reference = equiv_reference(c);
    c.sweep_hits();
    assert_eq!(reference, 0);
}

// The batched walk is the equivalence boundary: it holds the replay and
// composes the cache-level internals beneath it.
fn batch_walk(c: &mut Cache) {
    let reference = equiv_reference_batch(c);
    c.probe_fast_ext();
    assert_eq!(reference, 0);
}

// Entry points that route through the replay-carrying walk are safe: the
// discipline travels with the callee.
fn gather_run(c: &mut Cache) {
    batch_walk(c);
}
