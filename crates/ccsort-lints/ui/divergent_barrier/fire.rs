// Compile-fail fixture for `divergent_barrier`: collectives reachable only
// under PE-id-derived conditions. Lines that must fire carry `//~ <lint>`
// markers checked exactly by tests/ui.rs. (Fixtures are lint inputs, not
// workspace code — they are never compiled.)

struct M;
impl M {
    fn barrier(&mut self) {}
    fn subset_barrier(&mut self, _pes: &[usize]) {}
    fn publish_done(&mut self) {}
}

fn guarded_on_me(m: &mut M, me: usize) {
    if me == 0 {
        m.barrier(); //~ divergent_barrier
    }
}

fn matched_on_rank(m: &mut M, rank: usize) {
    match rank {
        0 => {
            m.publish_done(); //~ divergent_barrier
        }
        _ => {}
    }
}

fn else_branch_of_pe_condition(m: &mut M, pe: usize) {
    if pe > 1 {
        let _ = pe;
    } else {
        m.subset_barrier(&[0]); //~ divergent_barrier
    }
}

fn nested_under_pe(m: &mut M, my_rank: usize, done: bool) {
    if my_rank != 0 {
        while !done {
            m.barrier(); //~ divergent_barrier
        }
    }
}
