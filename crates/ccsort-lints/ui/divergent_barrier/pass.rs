// Compile-pass fixture for `divergent_barrier`: the shapes the lint must
// accept.

struct M;
impl M {
    fn barrier(&mut self) {}
    fn charge(&mut self, _pe: usize) {}
}

// Unconditional collectives are the SPMD norm.
fn bulk_synchronous_phase(m: &mut M, p: usize) {
    for pe in 0..p {
        m.charge(pe);
    }
    m.barrier();
}

// PE-guarded *work* is fine; only guarded collectives diverge.
fn leader_does_extra_work(m: &mut M, me: usize) {
    if me == 0 {
        m.charge(0);
    }
    m.barrier();
}

// Conditions not derived from a PE id may guard a barrier (e.g. an
// optional warm-up phase that every PE skips or takes together).
fn warmup_gate(m: &mut M, warm_caches: bool) {
    if warm_caches {
        m.barrier();
    }
}

// The barrier implementation layer composes barriers under internal
// conditions; that is cost modelling, not SPMD control flow.
struct Inner;
impl Inner {
    fn barrier(&mut self) {}
}
fn barrier_with_detector(inner: &mut Inner, detector_on: bool, me: usize) {
    if detector_on && me < 64 {
        inner.barrier();
    }
}
