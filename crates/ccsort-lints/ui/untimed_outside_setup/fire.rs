// Compile-fail fixture for `untimed_outside_setup`: untimed data movement
// inside timed phases.

struct M;
impl M {
    fn copy_untimed(&mut self, _n: usize) {}
    fn write_untimed(&mut self, _n: usize) {}
}

fn permute_phase(m: &mut M) {
    m.copy_untimed(128); //~ untimed_outside_setup
}

fn histogram_accumulate(m: &mut M, lazy: bool) {
    if lazy {
        m.write_untimed(1); //~ untimed_outside_setup
    }
}
