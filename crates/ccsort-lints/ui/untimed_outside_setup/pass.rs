// Compile-pass fixture for `untimed_outside_setup`.

struct M;
impl M {
    fn copy_untimed(&mut self, _n: usize) {}
    fn write_untimed(&mut self, _n: usize) {}
    fn touch_run(&mut self, _n: usize) {}
}

// Setup-phase staging is the API's purpose.
fn setup_radix_input(m: &mut M) {
    m.copy_untimed(1024);
}

// Allocation-phase layout too.
fn alloc_recv_buffers(m: &mut M) {
    m.write_untimed(64);
}

// The untimed API's own wrapper layer is exempt by name.
fn scatter_untimed(m: &mut M) {
    m.copy_untimed(8);
}

// A timed phase may keep an untimed call with a written justification.
fn exchange(m: &mut M) {
    m.touch_run(512);
    // ccsort-lints: allow(untimed_outside_setup) -- the touch_run above
    // charges this transfer's memory cost; this call is only the
    // backing-store motion of the same data.
    m.copy_untimed(512);
}
