//! The service itself: bounded submission queue, flush policy, and the
//! persistent executor pool.
//!
//! Control flow: `submit_*` enqueues a request under the state lock (or
//! rejects it when the queue is full — admission control never blocks and
//! never drops silently). Executor threads wait on a condvar and claim a
//! batch whenever a lane becomes *ready*: its queued bytes reach
//! `max_batch_bytes`, or its oldest request has waited `max_wait_us` —
//! whichever comes first. Claimed requests leave the bounded queue
//! immediately, so admission capacity frees as soon as a batch starts.
//! Shutdown drains every queued request before the executors exit; an
//! accepted request always gets a reply.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ccsort_parallel::RadixSortConfig;

use crate::batch::{
    BatchOutcome, KeysLaneScratch, LaneQueue, PairsLaneScratch, Request, Ticket,
};

/// Configuration for [`SortService::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum queued (accepted but unclaimed) requests across all lanes;
    /// submissions beyond it are rejected explicitly.
    pub queue_limit: usize,
    /// Flush a lane once its queued key+payload bytes reach this; also the
    /// target size of a coalesced batch.
    pub max_batch_bytes: usize,
    /// Flush a lane once its oldest request has waited this long, even if
    /// the byte threshold is not met. The latency cost of coalescing at
    /// low load is bounded by this window.
    pub max_wait_us: u64,
    /// Executor threads. `0` is the deterministic test mode: nothing runs
    /// until the caller pumps [`SortService::drain_one`].
    pub executors: usize,
    /// `false` disables coalescing — every batch is exactly one request.
    /// This is the measured baseline `svcbench` compares against.
    pub coalescing: bool,
    /// Engine configuration for solo sorts (single-request batches — all
    /// of them, when coalescing is off).
    pub sort: RadixSortConfig,
    /// Engine configuration for coalesced (multi-request) batch sorts;
    /// `None` reuses `sort`. A coalesced batch is a much larger sort than
    /// the requests it contains, so its optimal digit width differs: wide
    /// histograms amortise over a big batch but would swamp a tiny solo
    /// sort. The sorted output is bit-identical under every valid
    /// configuration, so this is purely a performance knob.
    pub batch_sort: Option<RadixSortConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_limit: 4096,
            max_batch_bytes: 1 << 22,
            max_wait_us: 200,
            executors: 1,
            coalescing: true,
            sort: RadixSortConfig::default(),
            batch_sort: None,
        }
    }
}

impl ServiceConfig {
    /// Check the configuration before any thread or queue exists, naming
    /// the offending field — same contract as `RadixSortConfig::validate`.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_limit == 0 {
            return Err("queue_limit = 0: the service could never accept a request".to_string());
        }
        if self.max_batch_bytes == 0 {
            return Err("max_batch_bytes = 0: a batch could never hold a key".to_string());
        }
        self.sort.validate().map_err(|e| format!("sort.{e}"))?;
        if let Some(b) = &self.batch_sort {
            b.validate().map_err(|e| format!("batch_sort.{e}"))?;
        }
        Ok(())
    }

    /// The engine configuration coalesced batches run with.
    pub fn batch_sort(&self) -> &RadixSortConfig {
        self.batch_sort.as_ref().unwrap_or(&self.sort)
    }
}

/// Why a submission was not accepted. Both variants hand the caller's
/// buffers back, so a retrying client reallocates nothing.
#[derive(Debug)]
pub enum SubmitError<K, P = ()> {
    /// The bounded queue is full; the request was NOT enqueued. `pending`
    /// is the queue depth observed at rejection time.
    Rejected { keys: Vec<K>, vals: Vec<P>, pending: usize },
    /// The service is shutting down and accepts no new work.
    ShuttingDown { keys: Vec<K>, vals: Vec<P> },
}

/// A point-in-time snapshot of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected by admission control (explicitly, at submit time).
    pub rejected: u64,
    /// Requests completed (replied to).
    pub completed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Requests that shared a batch with at least one other request.
    pub coalesced_requests: u64,
    /// Total keys sorted across all batches.
    pub keys_sorted: u64,
    /// Engine-scratch buffer growths across all executors. Flat after
    /// warm-up = the data plane allocates nothing per request.
    pub scratch_reallocations: u64,
}

#[derive(Default)]
struct StatCounters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    coalesced_requests: AtomicU64,
    keys_sorted: AtomicU64,
    scratch_reallocations: AtomicU64,
}

impl StatCounters {
    fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced_requests.load(Ordering::Relaxed),
            keys_sorted: self.keys_sorted.load(Ordering::Relaxed),
            scratch_reallocations: self.scratch_reallocations.load(Ordering::Relaxed),
        }
    }
}

/// One queue per request shape. Requests only ever coalesce within their
/// own lane — mixing key widths in one batch would change key bytes.
struct State {
    u32s: LaneQueue<u32, ()>,
    u64s: LaneQueue<u64, ()>,
    pairs: LaneQueue<u64, u64>,
    /// Total queued requests across lanes (the admission-control bound).
    pending: usize,
    shutdown: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneKind {
    U32,
    U64,
    Pairs,
}

/// All per-executor reusable buffers, one set per lane.
#[derive(Default)]
struct ExecScratch {
    u32s: KeysLaneScratch<u32>,
    u64s: KeysLaneScratch<u64>,
    pairs: PairsLaneScratch,
    /// Realloc total already published to the shared counter.
    reported: u64,
}

impl ExecScratch {
    fn reallocations(&self) -> u64 {
        self.u32s.reallocations() + self.u64s.reallocations() + self.pairs.reallocations()
    }
}

struct Shared {
    cfg: ServiceConfig,
    state: Mutex<State>,
    work: Condvar,
    stats: StatCounters,
    /// Scratch for inline draining (`executors: 0` mode and final drain).
    inline: Mutex<ExecScratch>,
}

/// Is this lane ready to flush? Returns the enqueue time of its oldest
/// request when it is — the tiebreaker for picking among ready lanes.
fn lane_ready<K, P>(
    lane: &LaneQueue<K, P>,
    cfg: &ServiceConfig,
    now: Instant,
    force: bool,
) -> Option<Instant> {
    let front = lane.q.front()?.enqueued;
    let waited = now.saturating_duration_since(front);
    // With coalescing off a batch is one request, so it is complete — and
    // ready — the moment it arrives; making it sit out the flush window
    // would throttle the baseline artificially.
    let ready = force
        || !cfg.coalescing
        || lane.bytes >= cfg.max_batch_bytes
        || waited >= Duration::from_micros(cfg.max_wait_us);
    ready.then_some(front)
}

/// Pick the ready lane whose oldest request has waited longest (FIFO
/// across lanes, deterministic given queue contents). `force` treats any
/// nonempty lane as ready — used by shutdown drains and `drain_one`.
fn pick_ready(st: &State, cfg: &ServiceConfig, now: Instant, force: bool) -> Option<LaneKind> {
    let candidates = [
        (lane_ready(&st.u32s, cfg, now, force), LaneKind::U32),
        (lane_ready(&st.u64s, cfg, now, force), LaneKind::U64),
        (lane_ready(&st.pairs, cfg, now, force), LaneKind::Pairs),
    ];
    candidates
        .into_iter()
        .filter_map(|(t, k)| t.map(|t| (t, k)))
        .min_by_key(|(t, _)| *t)
        .map(|(_, k)| k)
}

/// The enqueue time of the oldest request in any lane (for computing how
/// long an idle executor may sleep before a flush window expires).
fn earliest_front(st: &State) -> Option<Instant> {
    [
        st.u32s.q.front().map(|r| r.enqueued),
        st.u64s.q.front().map(|r| r.enqueued),
        st.pairs.q.front().map(|r| r.enqueued),
    ]
    .into_iter()
    .flatten()
    .min()
}

/// Move one batch out of `st` into the executor's scratch.
fn claim(st: &mut State, kind: LaneKind, cfg: &ServiceConfig, scratch: &mut ExecScratch) {
    let (b, c) = (cfg.max_batch_bytes, cfg.coalescing);
    let taken = match kind {
        LaneKind::U32 => st.u32s.claim_into(b, c, &mut scratch.u32s.claimed),
        LaneKind::U64 => st.u64s.claim_into(b, c, &mut scratch.u64s.claimed),
        LaneKind::Pairs => st.pairs.claim_into(b, c, &mut scratch.pairs.claimed),
    };
    st.pending -= taken;
}

/// Execute the claimed batch and publish its outcome to the counters.
fn run_claimed(shared: &Shared, kind: LaneKind, scratch: &mut ExecScratch) {
    let (solo, batch) = (&shared.cfg.sort, shared.cfg.batch_sort());
    let outcome: BatchOutcome = match kind {
        LaneKind::U32 => scratch.u32s.run(solo, batch),
        LaneKind::U64 => scratch.u64s.run(solo, batch),
        LaneKind::Pairs => scratch.pairs.run(solo, batch),
    };
    let s = &shared.stats;
    s.batches.fetch_add(1, Ordering::Relaxed);
    s.completed.fetch_add(outcome.requests, Ordering::Relaxed);
    if outcome.requests > 1 {
        s.coalesced_requests.fetch_add(outcome.requests, Ordering::Relaxed);
    }
    s.keys_sorted.fetch_add(outcome.keys, Ordering::Relaxed);
    let total = scratch.reallocations();
    s.scratch_reallocations.fetch_add(total - scratch.reported, Ordering::Relaxed);
    scratch.reported = total;
}

fn executor_loop(shared: &Shared) {
    let mut scratch = ExecScratch::default();
    loop {
        let claimed = {
            let mut st = shared.state.lock().unwrap();
            loop {
                let now = Instant::now();
                if let Some(kind) = pick_ready(&st, &shared.cfg, now, st.shutdown) {
                    claim(&mut st, kind, &shared.cfg, &mut scratch);
                    break Some(kind);
                }
                if st.shutdown {
                    // Not ready + forced pick failed = every lane empty.
                    break None;
                }
                let deadline = earliest_front(&st)
                    .map(|t| t + Duration::from_micros(shared.cfg.max_wait_us));
                match deadline {
                    Some(dl) => {
                        let now = Instant::now();
                        if dl <= now {
                            continue; // window expired while we computed
                        }
                        st = shared.work.wait_timeout(st, dl - now).unwrap().0;
                    }
                    None => st = shared.work.wait(st).unwrap(),
                }
            }
        };
        match claimed {
            Some(kind) => run_claimed(shared, kind, &mut scratch),
            None => return,
        }
    }
}

/// The sorting service. Shareable across client threads by reference
/// (`submit_*` takes `&self`); accepted work is completed even through
/// shutdown.
pub struct SortService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl SortService {
    /// Validate `cfg` and start the executor pool.
    pub fn start(cfg: ServiceConfig) -> Result<SortService, String> {
        cfg.validate()?;
        let executors = cfg.executors;
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(State {
                u32s: LaneQueue::default(),
                u64s: LaneQueue::default(),
                pairs: LaneQueue::default(),
                pending: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            stats: StatCounters::default(),
            inline: Mutex::new(ExecScratch::default()),
        });
        let workers = (0..executors)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ccsort-svc-{i}"))
                    .spawn(move || executor_loop(&shared))
                    .map_err(|e| format!("spawning executor {i}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SortService { shared, workers })
    }

    fn submit_with<K, P>(
        &self,
        keys: Vec<K>,
        vals: Vec<P>,
        lane: impl FnOnce(&mut State) -> &mut LaneQueue<K, P>,
    ) -> Result<Ticket<K, P>, SubmitError<K, P>> {
        let (tx, rx) = mpsc::channel();
        let notify;
        {
            let mut st = self.shared.state.lock().unwrap();
            if st.shutdown {
                return Err(SubmitError::ShuttingDown { keys, vals });
            }
            if st.pending >= self.shared.cfg.queue_limit {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Rejected { keys, vals, pending: st.pending });
            }
            let q = lane(&mut st);
            let was_empty = q.q.is_empty();
            let bytes_before = q.bytes;
            q.push(Request { keys, vals, reply: tx, enqueued: Instant::now() });
            // Wake an executor only on a transition it must act on: the
            // lane became nonempty (an idle pool must arm the flush-window
            // deadline), or this push crossed the byte threshold (the lane
            // just became claimable). With coalescing off every request is
            // immediately a complete batch, so every push qualifies.
            // Anything else would wake an executor that re-checks, finds
            // no ready lane, and re-arms the same deadline — and under a
            // small-request flood those futile wake-ups timeshare against
            // the submitters and dominate the service's cycle budget.
            notify = !self.shared.cfg.coalescing
                || was_empty
                || (bytes_before < self.shared.cfg.max_batch_bytes
                    && q.bytes >= self.shared.cfg.max_batch_bytes);
            st.pending += 1;
            self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        }
        if notify {
            self.shared.work.notify_one();
        }
        Ok(Ticket { rx })
    }

    /// Submit a keys-only `u32` sort. The vector is consumed and comes
    /// back sorted in the reply, so steady-state clients recycle buffers.
    pub fn submit_u32(&self, keys: Vec<u32>) -> Result<Ticket<u32>, SubmitError<u32>> {
        self.submit_with(keys, Vec::new(), |st| &mut st.u32s)
    }

    /// Submit a keys-only `u64` sort.
    pub fn submit_u64(&self, keys: Vec<u64>) -> Result<Ticket<u64>, SubmitError<u64>> {
        self.submit_with(keys, Vec::new(), |st| &mut st.u64s)
    }

    /// Submit a key+payload sort: `keys` and `vals` are parallel arrays
    /// and come back reordered together, stably.
    pub fn submit_pairs_u64(
        &self,
        keys: Vec<u64>,
        vals: Vec<u64>,
    ) -> Result<Ticket<u64, u64>, SubmitError<u64, u64>> {
        assert_eq!(keys.len(), vals.len(), "keys and values must be parallel arrays");
        self.submit_with(keys, vals, |st| &mut st.pairs)
    }

    /// Run one batch inline on the calling thread, treating any nonempty
    /// lane as ready (flush windows don't apply). With `executors: 0` this
    /// is the only pump, which makes batch boundaries — and therefore
    /// coalescing decisions — fully deterministic for tests.
    pub fn drain_one(&self) -> bool {
        let mut scratch = self.shared.inline.lock().unwrap();
        let claimed = {
            let mut st = self.shared.state.lock().unwrap();
            pick_ready(&st, &self.shared.cfg, Instant::now(), true).inspect(|&kind| {
                claim(&mut st, kind, &self.shared.cfg, &mut scratch);
            })
        };
        match claimed {
            Some(kind) => {
                run_claimed(&self.shared, kind, &mut scratch);
                true
            }
            None => false,
        }
    }

    /// Pump [`Self::drain_one`] until every queued request has completed.
    pub fn drain_all(&self) {
        while self.drain_one() {}
    }

    /// Current queue depth (accepted, not yet claimed into a batch).
    pub fn pending(&self) -> usize {
        self.shared.state.lock().unwrap().pending
    }

    /// Snapshot the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats.snapshot()
    }

    /// Stop accepting work, drain everything already accepted, stop the
    /// executors, and return the final counters.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        {
            self.shared.state.lock().unwrap().shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // With executors: 0 (or if an executor panicked) requests may
        // still be queued — drain them inline so every ticket resolves.
        self.drain_all();
    }
}

impl Drop for SortService {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize, seed: u64) -> Vec<u32> {
        // splitmix64-style mix: deterministic, well-shuffled.
        (0..n as u64)
            .map(|i| {
                let mut z = seed.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                (z ^ (z >> 31)) as u32
            })
            .collect()
    }

    #[test]
    fn end_to_end_with_executors() {
        let svc = SortService::start(ServiceConfig {
            executors: 2,
            max_wait_us: 50,
            ..ServiceConfig::default()
        })
        .unwrap();
        let tickets: Vec<_> = (0..40)
            .map(|i| {
                let input = keys(200 + i, i as u64);
                let mut expect = input.clone();
                expect.sort_unstable();
                (svc.submit_u32(input).unwrap(), expect)
            })
            .collect();
        for (t, expect) in tickets {
            assert_eq!(t.wait().keys, expect);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 40);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn deterministic_drain_coalesces() {
        let svc = SortService::start(ServiceConfig {
            executors: 0,
            queue_limit: 64,
            max_batch_bytes: 1 << 20,
            ..ServiceConfig::default()
        })
        .unwrap();
        let tickets: Vec<_> =
            (0..8).map(|i| svc.submit_u32(keys(128, 100 + i)).unwrap()).collect();
        assert_eq!(svc.pending(), 8);
        assert!(svc.drain_one(), "a queued lane must be claimable");
        assert!(!svc.drain_one(), "everything fits one batch");
        for t in tickets {
            let r = t.wait();
            assert_eq!(r.batch_requests, 8);
            assert!(r.keys.windows(2).all(|w| w[0] <= w[1]));
        }
        let stats = svc.stats();
        assert_eq!((stats.batches, stats.coalesced_requests), (1, 8));
        svc.shutdown();
    }

    #[test]
    fn coalescing_off_is_one_request_per_batch() {
        let svc = SortService::start(ServiceConfig {
            executors: 0,
            coalescing: false,
            ..ServiceConfig::default()
        })
        .unwrap();
        let tickets: Vec<_> = (0..5).map(|i| svc.submit_u32(keys(64, i)).unwrap()).collect();
        svc.drain_all();
        for t in tickets {
            assert_eq!(t.wait().batch_requests, 1);
        }
        assert_eq!(svc.stats().batches, 5);
        svc.shutdown();
    }

    #[test]
    fn overload_rejects_explicitly_and_returns_buffers() {
        let svc = SortService::start(ServiceConfig {
            executors: 0,
            queue_limit: 3,
            ..ServiceConfig::default()
        })
        .unwrap();
        let mut tickets = Vec::new();
        for i in 0..3 {
            tickets.push(svc.submit_u32(keys(16, i)).unwrap());
        }
        let spilled = keys(16, 99);
        match svc.submit_u32(spilled.clone()) {
            Err(SubmitError::Rejected { keys: k, pending, .. }) => {
                assert_eq!(k, spilled, "rejected buffers come back untouched");
                assert_eq!(pending, 3);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(svc.stats().rejected, 1);
        svc.drain_all();
        for t in tickets {
            t.wait();
        }
        svc.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let svc =
            SortService::start(ServiceConfig { executors: 0, ..ServiceConfig::default() }).unwrap();
        let t = svc.submit_pairs_u64(vec![3, 1, 2], vec![30, 10, 20]).unwrap();
        let stats = svc.shutdown();
        let r = t.wait();
        assert_eq!((r.keys, r.vals), (vec![1, 2, 3], vec![10, 20, 30]));
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let svc =
            SortService::start(ServiceConfig { executors: 0, ..ServiceConfig::default() }).unwrap();
        {
            svc.shared.state.lock().unwrap().shutdown = true;
        }
        match svc.submit_u64(vec![2, 1]) {
            Err(SubmitError::ShuttingDown { keys, .. }) => assert_eq!(keys, vec![2, 1]),
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn validation_names_the_offending_field() {
        assert!(ServiceConfig::default().validate().is_ok());
        let bad = ServiceConfig { queue_limit: 0, ..ServiceConfig::default() };
        assert!(bad.validate().unwrap_err().contains("queue_limit = 0"));
        let bad = ServiceConfig { max_batch_bytes: 0, ..ServiceConfig::default() };
        assert!(bad.validate().unwrap_err().contains("max_batch_bytes = 0"));
        let mut bad = ServiceConfig::default();
        bad.sort.radix_bits = 0;
        assert!(bad.validate().unwrap_err().contains("sort.radix_bits = 0"));
    }
}
