//! Batch assembly and split-back: the data plane of the sorting service.
//!
//! A batch is the concatenation of the queued requests' key arrays, with a
//! parallel *tag lane* that lets split-back route every element of the
//! sorted batch to its requester. One stable sort of `(keys, tags)`
//! through the `ccsort-parallel` engine orders the whole batch; because
//! the sort is stable and each request's elements enter the batch
//! contiguously in input order, the subsequence belonging to one request
//! is exactly what a solo stable sort of that request alone would have
//! produced — byte for byte. Split-back then scans the sorted tag lane
//! once and writes every element straight back into the requester's own
//! (recycled) buffers, so the data plane allocates nothing per request at
//! steady state.
//!
//! The tag lane is sized to what the sort actually has to carry — every
//! byte in it is moved twice per radix pass, so the budget matters (see
//! DESIGN.md §15):
//!
//! * **Keys-only lanes** tag with a `u16` request id: 2 bytes per element
//!   buys routing for up to 65 535 requests per batch (far above any
//!   `queue_limit`), and the request's sorted keys are its whole reply.
//! * **The pairs lane** tags with the `u32` *batch position* instead and
//!   leaves payloads out of the sort entirely: each pass moves key + 4
//!   tag bytes rather than key + 16 `(payload, rid)` bytes, and one
//!   gather at split-back fetches `payload[pos]` and looks the request id
//!   up in a per-batch `rid_of` table. Positions are unique and
//!   ascending, so stability and byte-identity are preserved.

use std::collections::VecDeque;
use std::mem::size_of;
use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;

use ccsort_parallel::{
    par_radix_sort_pairs_with_scratch, par_radix_sort_with_scratch, RadixKey, RadixSortConfig,
    SortScratch,
};

/// Most requests one batch may hold: the `u16` rid tag (and the `u16`
/// `rid_of` table on the pairs lane) must be able to name every request.
pub const MAX_BATCH_REQUESTS: usize = u16::MAX as usize;

/// A completed request: the sorted keys (and payloads, on pairs lanes),
/// plus how the service handled it.
#[derive(Debug)]
pub struct SortedReply<K, P = ()> {
    /// The request's keys, sorted — the same buffer that was submitted.
    pub keys: Vec<K>,
    /// The payloads, reordered with their keys (empty on keys-only lanes).
    pub vals: Vec<P>,
    /// How many requests shared this request's batch (1 = solo).
    pub batch_requests: u32,
    /// When the batch finished sorting. Stamped service-side so an
    /// open-loop load generator can compute completion latency without
    /// polling the ticket.
    pub completed: Instant,
}

/// The completion handle returned by every accepted submission. Exactly
/// one reply arrives per accepted request — rejection happens at submit
/// time, never after acceptance.
#[derive(Debug)]
pub struct Ticket<K, P = ()> {
    pub(crate) rx: Receiver<SortedReply<K, P>>,
}

impl<K, P> Ticket<K, P> {
    /// Block until the request completes.
    pub fn wait(self) -> SortedReply<K, P> {
        self.rx
            .recv()
            .expect("sorting service dropped an accepted request without replying")
    }

    /// Non-blocking poll; `None` until the reply is available.
    pub fn try_wait(&self) -> Option<SortedReply<K, P>> {
        self.rx.try_recv().ok()
    }
}

/// One queued sort request.
pub(crate) struct Request<K, P> {
    pub keys: Vec<K>,
    /// Payload lane; empty on keys-only lanes.
    pub vals: Vec<P>,
    pub reply: Sender<SortedReply<K, P>>,
    pub enqueued: Instant,
}

impl<K, P> Request<K, P> {
    pub fn bytes(&self) -> usize {
        self.keys.len() * size_of::<K>() + self.vals.len() * size_of::<P>()
    }
}

/// FIFO queue of pending requests for one key/payload shape, with the byte
/// total the flush policy watches.
pub(crate) struct LaneQueue<K, P> {
    pub q: VecDeque<Request<K, P>>,
    pub bytes: usize,
}

impl<K, P> Default for LaneQueue<K, P> {
    fn default() -> Self {
        LaneQueue { q: VecDeque::new(), bytes: 0 }
    }
}

impl<K, P> LaneQueue<K, P> {
    pub fn push(&mut self, r: Request<K, P>) {
        self.bytes += r.bytes();
        self.q.push_back(r);
    }

    /// Move one batch of requests from the queue front into `out`
    /// (clearing it first) and return how many were taken. Coalescing on:
    /// take requests while the batch stays under `max_batch_bytes` and
    /// [`MAX_BATCH_REQUESTS`] (always at least one — an oversized request
    /// forms a solo batch). Coalescing off: take exactly one, the
    /// per-request baseline.
    pub fn claim_into(
        &mut self,
        max_batch_bytes: usize,
        coalescing: bool,
        out: &mut Vec<Request<K, P>>,
    ) -> usize {
        out.clear();
        let mut took_bytes = 0usize;
        while let Some(front) = self.q.front() {
            let b = front.bytes();
            if !out.is_empty() && (took_bytes + b > max_batch_bytes || out.len() >= MAX_BATCH_REQUESTS)
            {
                break;
            }
            took_bytes += b;
            self.bytes -= b;
            out.push(self.q.pop_front().expect("front checked above"));
            if !coalescing {
                break;
            }
        }
        out.len()
    }
}

/// What one batch execution did, for the stats counters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchOutcome {
    pub requests: u64,
    pub keys: u64,
}

fn reply_all<K, P>(claimed: &mut Vec<Request<K, P>>, total_keys: usize) -> BatchOutcome {
    let nreq = claimed.len() as u32;
    let completed = Instant::now();
    for r in claimed.drain(..) {
        // A requester that dropped its ticket discards the result; the
        // send's Err tells us no one is listening — an explicit outcome,
        // not a silent drop.
        let _ = r.reply.send(SortedReply {
            keys: r.keys,
            vals: r.vals,
            batch_requests: nreq,
            completed,
        });
    }
    BatchOutcome { requests: nreq as u64, keys: total_keys as u64 }
}

/// Per-executor reusable buffers for one keys-only lane. Everything here
/// survives across batches; steady-state batches of stable shape never
/// allocate.
pub(crate) struct KeysLaneScratch<K> {
    /// Requests claimed for the batch currently executing.
    pub claimed: Vec<Request<K, ()>>,
    keys: Vec<K>,
    tags: Vec<u16>,
    cursors: Vec<usize>,
    /// One engine scratch serves both shapes this lane sorts: solo
    /// batches go through the keys-only entry point, coalesced batches
    /// through the pairs entry point with the `u16` tag lane.
    sort: SortScratch<K, u16>,
}

impl<K: Copy + Default> Default for KeysLaneScratch<K> {
    fn default() -> Self {
        KeysLaneScratch {
            claimed: Vec::new(),
            keys: Vec::new(),
            tags: Vec::new(),
            cursors: Vec::new(),
            sort: SortScratch::new(),
        }
    }
}

impl<K: RadixKey + Default> KeysLaneScratch<K> {
    /// Engine-scratch buffer growths — the counter behind
    /// [`crate::ServiceStats::scratch_reallocations`].
    pub fn reallocations(&self) -> u64 {
        self.sort.reallocations()
    }

    /// Sort the claimed batch and reply to every requester. Solo batches
    /// (the coalescing-off baseline, and any lone flush) skip the tag
    /// lane and sort in the requester's own buffer with `solo_cfg`;
    /// coalesced batches use `batch_cfg` (see
    /// [`crate::ServiceConfig::batch_sort`]).
    pub fn run(&mut self, solo_cfg: &RadixSortConfig, batch_cfg: &RadixSortConfig) -> BatchOutcome {
        let KeysLaneScratch { claimed, keys, tags, cursors, sort } = self;
        debug_assert!(!claimed.is_empty(), "run() with no claimed requests");
        debug_assert!(claimed.len() <= MAX_BATCH_REQUESTS);
        let total: usize = claimed.iter().map(|r| r.keys.len()).sum();

        if claimed.len() == 1 {
            par_radix_sort_with_scratch(&mut claimed[0].keys, solo_cfg, sort);
        } else {
            keys.clear();
            tags.clear();
            keys.reserve(total);
            tags.reserve(total);
            for (rid, r) in claimed.iter().enumerate() {
                keys.extend_from_slice(&r.keys);
                let new_len = tags.len() + r.keys.len();
                tags.resize(new_len, rid as u16);
            }
            par_radix_sort_pairs_with_scratch(&mut keys[..], &mut tags[..], batch_cfg, sort);
            cursors.clear();
            cursors.resize(claimed.len(), 0);
            for (&k, &t) in keys.iter().zip(tags.iter()) {
                let rid = t as usize;
                let c = cursors[rid];
                claimed[rid].keys[c] = k;
                cursors[rid] = c + 1;
            }
        }
        reply_all(claimed, total)
    }
}

/// Per-executor reusable buffers for the key+payload lane: batch keys, the
/// `u32` position tags the sort carries instead of payloads, the
/// concatenated payloads (gathered once at split-back), and the
/// position→request table.
#[derive(Default)]
pub(crate) struct PairsLaneScratch {
    pub claimed: Vec<Request<u64, u64>>,
    keys: Vec<u64>,
    tags: Vec<u32>,
    vals: Vec<u64>,
    rid_of: Vec<u16>,
    cursors: Vec<usize>,
    /// Engine scratch for coalesced (position-tagged) batch sorts.
    sort: SortScratch<u64, u32>,
    /// Engine scratch for solo batches, which sort key+payload directly.
    solo: SortScratch<u64, u64>,
}

impl PairsLaneScratch {
    pub fn reallocations(&self) -> u64 {
        self.sort.reallocations() + self.solo.reallocations()
    }

    pub fn run(&mut self, solo_cfg: &RadixSortConfig, batch_cfg: &RadixSortConfig) -> BatchOutcome {
        let PairsLaneScratch { claimed, keys, tags, vals, rid_of, cursors, sort, solo } = self;
        debug_assert!(!claimed.is_empty(), "run() with no claimed requests");
        debug_assert!(claimed.len() <= MAX_BATCH_REQUESTS);
        let total: usize = claimed.iter().map(|r| r.keys.len()).sum();

        if claimed.len() == 1 {
            let r = &mut claimed[0];
            par_radix_sort_pairs_with_scratch(&mut r.keys, &mut r.vals, solo_cfg, solo);
        } else {
            assert!(total <= u32::MAX as usize, "batch exceeds u32 position space");
            keys.clear();
            vals.clear();
            rid_of.clear();
            keys.reserve(total);
            vals.reserve(total);
            rid_of.reserve(total);
            for (rid, r) in claimed.iter().enumerate() {
                keys.extend_from_slice(&r.keys);
                vals.extend_from_slice(&r.vals);
                let new_len = rid_of.len() + r.keys.len();
                rid_of.resize(new_len, rid as u16);
            }
            tags.clear();
            tags.extend(0..total as u32);
            par_radix_sort_pairs_with_scratch(&mut keys[..], &mut tags[..], batch_cfg, sort);
            cursors.clear();
            cursors.resize(claimed.len(), 0);
            for (&k, &pos) in keys.iter().zip(tags.iter()) {
                let pos = pos as usize;
                let rid = rid_of[pos] as usize;
                let c = cursors[rid];
                let r = &mut claimed[rid];
                r.keys[c] = k;
                r.vals[c] = vals[pos];
                cursors[rid] = c + 1;
            }
        }
        reply_all(claimed, total)
    }
}
