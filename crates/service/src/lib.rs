//! # ccsort-service
//!
//! Sorting as a service: a long-running in-process service that accepts
//! keyed sort requests from many concurrent clients and serves them
//! through the `ccsort-parallel` engine.
//!
//! The design lifts the paper's core performance lesson — many small
//! transfers lose to a few large coalesced ones (Shan & Singh's message
//! coalescing, § "remote communication") — from the memory system to the
//! service layer. Each sort request pays fixed costs that do not shrink
//! with the request: thread wake-up, histogram setup, scratch shaping.
//! The service amortises them by *coalescing*: compatible queued requests
//! are merged into one tagged batch, sorted once, and split back to their
//! requesters (see [`batch`] for the correctness argument). A persistent
//! executor pool reuses [`ccsort_parallel::SortScratch`] across batches,
//! so at steady state the data plane allocates nothing per request —
//! [`ServiceStats::scratch_reallocations`] proves it at runtime.
//!
//! ```
//! use ccsort_service::{ServiceConfig, SortService};
//!
//! let svc = SortService::start(ServiceConfig::default()).unwrap();
//! let ticket = svc.submit_u32(vec![3, 1, 2]).unwrap();
//! assert_eq!(ticket.wait().keys, vec![1, 2, 3]);
//! svc.shutdown();
//! ```
//!
//! Overload is handled by admission control, never by silent drops: the
//! queue is bounded and a full queue rejects new requests explicitly with
//! [`SubmitError::Rejected`], handing the caller's buffers back.

pub mod batch;
pub mod service;

pub use batch::{SortedReply, Ticket};
pub use service::{ServiceConfig, ServiceStats, SortService, SubmitError};
