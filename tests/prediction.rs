//! The closed-form performance-prediction formula (the paper's stated
//! future work) against the execution-driven simulator: the prediction
//! never runs the program, so agreement means the simulated behaviour
//! follows from the machine parameters.

use ccsort::algos::predict::{predict_radix, PredictModel};
use ccsort::algos::{run_experiment, Algorithm, ExpConfig};
use ccsort::machine::MachineConfig;

fn simulate(model: PredictModel, n: usize, p: usize, scale: usize) -> f64 {
    let alg = match model {
        PredictModel::Ccsas => Algorithm::RadixCcsas,
        PredictModel::CcsasNew => Algorithm::RadixCcsasNew,
        PredictModel::Mpi => Algorithm::RadixMpiDirect,
        PredictModel::Shmem => Algorithm::RadixShmem,
    };
    let res = run_experiment(&ExpConfig::new(alg, n, p).radix_bits(8).scale(scale));
    assert!(res.verified);
    res.parallel_ns
}

#[test]
fn prediction_tracks_simulation_within_a_small_factor() {
    let n = 1 << 19;
    let p = 32;
    let scale = 8;
    let cfg = MachineConfig::origin2000(p).scaled_down(scale);
    for model in PredictModel::ALL {
        let predicted = predict_radix(&cfg, model, n, p, 8).total();
        let simulated = simulate(model, n, p, scale);
        let ratio = predicted / simulated;
        assert!(
            (0.3..=3.0).contains(&ratio),
            "{model:?}: predicted {predicted:.0} vs simulated {simulated:.0} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn prediction_orders_the_models_like_the_simulator_at_large_n() {
    let n = 1 << 20;
    let p = 32;
    let scale = 8;
    let cfg = MachineConfig::origin2000(p).scaled_down(scale);
    // The paper's large-size ordering: SHMEM best, original CC-SAS worst.
    let pred_shmem = predict_radix(&cfg, PredictModel::Shmem, n, p, 8).total();
    let pred_ccsas = predict_radix(&cfg, PredictModel::Ccsas, n, p, 8).total();
    assert!(pred_shmem < pred_ccsas);
    let sim_shmem = simulate(PredictModel::Shmem, n, p, scale);
    let sim_ccsas = simulate(PredictModel::Ccsas, n, p, scale);
    assert!(sim_shmem < sim_ccsas);
}

#[test]
fn prediction_scales_with_processors() {
    let n = 1 << 20;
    for model in PredictModel::ALL {
        let t16 = predict_radix(&MachineConfig::origin2000(16).scaled_down(8), model, n, 16, 8).total();
        let t64 = predict_radix(&MachineConfig::origin2000(64).scaled_down(8), model, n, 64, 8).total();
        assert!(t64 < t16, "{model:?}: 64 procs ({t64}) must predict faster than 16 ({t16})");
    }
}
