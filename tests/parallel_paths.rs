//! Deterministic coverage of the speed-grade parallel radix paths —
//! write-coalescing staging, the work-stealing chunk queue, and fused
//! multi-digit histogramming — sized for the curated ThreadSanitizer CI
//! tier: real threads, real contention, no proptest shrinking loops.
//!
//! Every sort here runs with `sequential_cutoff: 0` so the parallel engine
//! (not the sequential fallback) is what TSan instruments.

use ccsort::parallel::pairs::{par_radix_sort_pairs_with, radix_sort_pairs};
use ccsort::parallel::{par_radix_sort_with, ChunkQueue, RadixSortConfig};

/// Deterministic keys (splitmix64) — the same arrays on every run, so a
/// TSan report here is always reproducible.
fn keys(n: usize, seed: u64) -> Vec<u32> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u32
        })
        .collect()
}

/// The mechanism grid: every combination that takes a distinct code path
/// through the engine, at worker counts that force contention (more
/// workers than cores on any CI machine) including non-powers of two.
fn configs() -> Vec<RadixSortConfig> {
    let base = RadixSortConfig { sequential_cutoff: 0, ..RadixSortConfig::default() };
    vec![
        RadixSortConfig { sequential_cutoff: 0, ..RadixSortConfig::simple() },
        // Stealing without coalescing: direct scatter through the queue.
        RadixSortConfig { coalesce_bytes: None, chunks: Some(7), ..base.clone() },
        // Coalescing without stealing: static regions, staged flushes.
        RadixSortConfig { work_stealing: false, chunks: Some(5), ..base.clone() },
        // Tiny staging buffers: flush on (almost) every element.
        RadixSortConfig { coalesce_bytes: Some(4), chunks: Some(6), ..base.clone() },
        // Fused histogramming off: per-pass counting under stealing.
        RadixSortConfig { fused_histogram: false, chunks: Some(13), ..base.clone() },
        // Everything on, fine-grained stealing.
        RadixSortConfig { chunks: Some(11), steal_granularity: 4, ..base },
    ]
}

#[test]
fn every_engine_path_sorts_uniform_keys() {
    let input = keys(60_000, 1);
    let mut expect = input.clone();
    expect.sort_unstable();
    for cfg in configs() {
        let mut v = input.clone();
        par_radix_sort_with(&mut v, &cfg);
        assert_eq!(v, expect, "diverged under {cfg:?}");
    }
}

#[test]
fn every_engine_path_sorts_skewed_keys() {
    // One dominant bucket (zipf-like worst case for static partitioning)
    // plus a uniform tail; all passes above the first are near-trivial.
    let mut input = keys(60_000, 2);
    for (i, k) in input.iter_mut().enumerate() {
        if i % 4 != 0 {
            *k = 0xAB00 + (i % 7) as u32;
        }
    }
    let mut expect = input.clone();
    expect.sort_unstable();
    for cfg in configs() {
        let mut v = input.clone();
        par_radix_sort_with(&mut v, &cfg);
        assert_eq!(v, expect, "diverged under {cfg:?}");
    }
}

#[test]
fn every_engine_path_keeps_pairs_stable() {
    // 16 distinct keys, payload = original index: the unique stable order
    // catches any equal-key reordering from staging or stealing.
    let input: Vec<u32> = keys(40_000, 3).iter().map(|k| k & 15).collect();
    let vals: Vec<u32> = (0..input.len() as u32).collect();
    let (mut ks, mut vs) = (input.clone(), vals.clone());
    radix_sort_pairs(&mut ks, &mut vs, 8);
    for cfg in configs() {
        let (mut k, mut v) = (input.clone(), vals.clone());
        par_radix_sort_pairs_with(&mut k, &mut v, &cfg);
        assert_eq!(k, ks, "keys diverged under {cfg:?}");
        assert_eq!(v, vs, "stability broken under {cfg:?}");
    }
}

#[test]
fn chunk_queue_contended_claims_are_exactly_once() {
    // Heavier-than-unit-test contention for the TSan tier: many workers
    // hammering a small region set, repeated to vary interleavings.
    for round in 0..8u64 {
        let workers = 2 + (round as usize % 7);
        let chunks = 96;
        let q = ChunkQueue::new(workers, chunks, true);
        let counts: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let q = &q;
                    s.spawn(move || {
                        let mut seen = vec![false; chunks];
                        while let Some(c) = q.claim(w) {
                            assert!(!seen[c], "worker {w} claimed {c} twice");
                            seen[c] = true;
                        }
                        seen.iter().filter(|&&b| b).count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counts.iter().sum::<usize>(), chunks, "round {round}");
        assert_eq!(q.remaining(), 0);
    }
}

#[test]
fn wide_digit_and_u64_paths() {
    // 12-bit digits stay on the fused path; 16-bit digits take the
    // per-pass fallback. Both under stealing with real threads.
    let input: Vec<u64> = keys(40_000, 4).iter().map(|&k| (k as u64) << 13 | k as u64).collect();
    let mut expect = input.clone();
    expect.sort_unstable();
    for bits in [12u32, 16] {
        let mut v = input.clone();
        par_radix_sort_with(
            &mut v,
            &RadixSortConfig {
                radix_bits: bits,
                chunks: Some(6),
                sequential_cutoff: 0,
                ..RadixSortConfig::default()
            },
        );
        assert_eq!(v, expect, "diverged at radix_bits={bits}");
    }
}
