//! Property-based tests of the sorting service's one correctness claim:
//! however a workload is split into requests, and however the batcher's
//! flush timing groups those requests into batches, every request's reply
//! is byte-identical to a solo engine sort of that request alone.
//!
//! Flush timing is driven deterministically: `executors: 0` makes
//! [`SortService::drain_one`] the only pump, so interleaving submissions
//! with drains (and varying `max_batch_bytes`) explores arbitrary batch
//! compositions — from all-solo to one giant batch — without relying on
//! real-time windows.

use ccsort::parallel::{par_radix_sort_pairs_with, par_radix_sort_with};
use ccsort::service::{ServiceConfig, SortService, SubmitError};
use proptest::prelude::*;

/// Split `workload` at the given fractional cut points into contiguous
/// request slices (some possibly empty — empty requests are legal).
fn split_requests<T: Clone>(workload: &[T], cuts: &[usize]) -> Vec<Vec<T>> {
    let n = workload.len();
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (n + 1)).collect();
    bounds.push(0);
    bounds.push(n);
    bounds.sort_unstable();
    bounds.windows(2).map(|w| workload[w[0]..w[1]].to_vec()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any split of a u32 workload into requests, any batch-size cap, any
    /// drain interleaving: per-request replies equal solo sorts.
    #[test]
    fn coalesced_u32_equals_solo_any_split_any_flush(
        workload in proptest::collection::vec(any::<u32>(), 0..3000),
        cuts in proptest::collection::vec(0usize..3000, 0..12),
        max_batch_bytes in 64usize..(1 << 16),
        drain_every in 1usize..6,
    ) {
        let svc = SortService::start(ServiceConfig {
            executors: 0,
            max_batch_bytes,
            queue_limit: 64,
            ..ServiceConfig::default()
        }).unwrap();
        let cfg = ServiceConfig::default().sort;
        let mut tickets = Vec::new();
        for (i, req) in split_requests(&workload, &cuts).into_iter().enumerate() {
            let mut solo = req.clone();
            par_radix_sort_with(&mut solo, &cfg);
            tickets.push((svc.submit_u32(req).unwrap(), solo));
            // Interleave drains with submissions: every prefix of the
            // queue is a flush boundary somewhere in the case space.
            if (i + 1) % drain_every == 0 {
                svc.drain_one();
            }
        }
        svc.drain_all();
        for (t, solo) in tickets {
            prop_assert_eq!(t.wait().keys, solo);
        }
        svc.shutdown();
    }

    /// Pairs lane under heavy key duplication: split-back must preserve
    /// the stable order of equal keys within every request.
    #[test]
    fn coalesced_pairs_equal_solo_and_stay_stable(
        workload in proptest::collection::vec(0u64..16, 0..1500),
        cuts in proptest::collection::vec(0usize..1500, 0..8),
        max_batch_bytes in 256usize..(1 << 15),
        drain_every in 1usize..5,
    ) {
        let svc = SortService::start(ServiceConfig {
            executors: 0,
            max_batch_bytes,
            queue_limit: 64,
            ..ServiceConfig::default()
        }).unwrap();
        let cfg = ServiceConfig::default().sort;
        let mut tickets = Vec::new();
        for (i, req) in split_requests(&workload, &cuts).into_iter().enumerate() {
            let vals: Vec<u64> = (0..req.len() as u64).collect();
            let (mut sk, mut sv) = (req.clone(), vals.clone());
            par_radix_sort_pairs_with(&mut sk, &mut sv, &cfg);
            tickets.push((svc.submit_pairs_u64(req, vals).unwrap(), sk, sv));
            if (i + 1) % drain_every == 0 {
                svc.drain_one();
            }
        }
        svc.drain_all();
        for (t, sk, sv) in tickets {
            let r = t.wait();
            prop_assert_eq!(r.keys, sk);
            prop_assert_eq!(r.vals, sv);
        }
        svc.shutdown();
    }

    /// Overload: the queue never exceeds its bound, every over-limit
    /// submission is rejected explicitly with its buffers intact, and the
    /// accepted prefix still completes correctly.
    #[test]
    fn backpressure_bounds_memory_and_rejects_explicitly(
        queue_limit in 1usize..24,
        extra in 0usize..40,
        req_len in 0usize..64,
    ) {
        let svc = SortService::start(ServiceConfig {
            executors: 0,
            queue_limit,
            ..ServiceConfig::default()
        }).unwrap();
        let mut accepted = Vec::new();
        let mut rejected = 0u64;
        for i in 0..queue_limit + extra {
            let input: Vec<u32> = (0..req_len as u32).map(|j| j ^ (i as u32) << 5).collect();
            match svc.submit_u32(input.clone()) {
                Ok(t) => accepted.push((t, input)),
                Err(SubmitError::Rejected { keys, pending, .. }) => {
                    prop_assert_eq!(keys, input);
                    prop_assert_eq!(pending, queue_limit);
                    rejected += 1;
                }
                Err(e) => prop_assert!(false, "unexpected submit error: {e:?}"),
            }
            prop_assert!(svc.pending() <= queue_limit);
        }
        prop_assert_eq!(accepted.len(), queue_limit);
        prop_assert_eq!(rejected, extra as u64);
        svc.drain_all();
        for (t, input) in accepted {
            let mut expect = input;
            expect.sort_unstable();
            prop_assert_eq!(t.wait().keys, expect);
        }
        let stats = svc.shutdown();
        prop_assert_eq!(stats.completed, queue_limit as u64);
        prop_assert_eq!(stats.rejected, extra as u64);
    }
}
