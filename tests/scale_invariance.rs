//! The scaling model's core promise: running a paper-labelled size at a
//! deeper machine scale preserves the model ordering, because capacities
//! and fixed costs scale together (DESIGN.md §4).

use ccsort::algos::{run_experiment, Algorithm, ExpConfig};

/// "16M"-labelled radix sort at two different scales: the SHMEM > NEW >
/// original-CC-SAS ordering must hold at both, and per-key times must land
/// within a modest band of each other.
#[test]
fn radix_model_ordering_is_stable_across_scales() {
    let p = 32;
    let label_n = 1usize << 24; // "16M"
    let per_key = |alg: Algorithm, scale: usize| {
        let n = label_n / scale;
        let res = run_experiment(&ExpConfig::new(alg, n, p).radix_bits(8).scale(scale));
        assert!(res.verified);
        res.parallel_ns / n as f64
    };
    for &scale in &[8usize, 32] {
        let shmem = per_key(Algorithm::RadixShmem, scale);
        let ccsas_new = per_key(Algorithm::RadixCcsasNew, scale);
        let ccsas = per_key(Algorithm::RadixCcsas, scale);
        assert!(
            shmem < ccsas_new && ccsas_new < ccsas,
            "scale {scale}: SHMEM ({shmem:.1}) < NEW ({ccsas_new:.1}) < CC-SAS ({ccsas:.1}) expected"
        );
    }
    // Per-key cost of the same label at the two scales agrees within 2x.
    let a = per_key(Algorithm::RadixShmem, 8);
    let b = per_key(Algorithm::RadixShmem, 32);
    let ratio = a.max(b) / a.min(b);
    assert!(ratio < 2.0, "per-key time drifted {ratio:.2}x between scales ({a:.1} vs {b:.1} ns/key)");
}
