//! Acceptance tests for the directory's sharer-set representations
//! (`DirectoryMode`): past the real machine's 64 processors, the sorted
//! output must not depend on which representation tracked the sharers —
//! the modes change invalidation *cost*, never *state* — and the
//! limited-pointer mode's broadcast-on-overflow must visibly inflate the
//! permutation phase's invalidation bill relative to full-map at the same
//! processor count.

use ccsort::algos::dist::generate;
use ccsort::algos::{radix, run_experiment, Algorithm, Dist, ExpConfig, ExpResult, KEY_BITS};
use ccsort::machine::{DirectoryMode, Machine, MachineConfig, Placement};

const MODES: [DirectoryMode; 3] = [
    DirectoryMode::FullMap,
    DirectoryMode::LimitedPointer(8),
    DirectoryMode::CoarseVector(8),
];

/// The headline acceptance criterion: a p = 256 radix sort completes under
/// all three representations with bit-identical sorted output, and the
/// end-of-run machine audit is clean in each (the imprecise modes satisfy
/// the conservative-superset invariants, they never under-invalidate).
#[test]
fn p256_radix_sort_output_is_representation_independent() {
    let (n, p, r) = (1 << 12, 256usize, 8u32);
    let input = generate(Dist::Gauss, n, p, r, 7);
    let mut expect = input.clone();
    expect.sort_unstable();

    let mut reference: Option<Vec<u32>> = None;
    for mode in MODES {
        let cfg = MachineConfig::origin2000(p).scaled_down(256).with_directory_mode(mode);
        let mut m = Machine::new(cfg);
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
        m.raw_mut(a).copy_from_slice(&input);
        let out = radix::ccsas::sort(&mut m, [a, b], n, r, KEY_BITS);
        let sorted = m.raw(out).to_vec();
        assert_eq!(sorted, expect, "dir={mode}: output is not the sorted input");
        assert_eq!(m.audit(), Vec::<String>::new(), "dir={mode}: machine audit failed");
        match &reference {
            None => reference = Some(sorted),
            Some(first) => {
                assert_eq!(&sorted, first, "dir={mode}: output differs from full-map's")
            }
        }
    }
}

/// And the same independence through the experiment driver (which also
/// cross-checks the output against `sort_unstable` internally) for the
/// sample sort, whose splitter exchange shares lines much more widely
/// than the radix permutation does.
#[test]
fn p256_sample_sort_verifies_in_every_mode() {
    for mode in MODES {
        let res = run_experiment(
            &ExpConfig::new(Algorithm::SampleCcsas, 1 << 12, 256)
                .radix_bits(8)
                .dist(Dist::Stagger)
                .seed(7)
                .scale(256)
                .directory_mode(mode),
        );
        assert!(res.verified, "dir={mode}: output not a sorted permutation");
    }
}

/// Dir-i-B economics, end to end: with a 1-pointer directory every second
/// sharer overflows the entry, and each subsequent write broadcasts
/// invalidations to all other processors instead of the handful full-map
/// would target. At the same p the run must charge strictly more
/// invalidations, spend strictly more time in the permutation phase (the
/// scattered-remote-write phase where the broadcasts land), and finish
/// strictly later.
#[test]
fn limited_pointer_overflow_inflates_permutation_invalidation_cost() {
    let run = |mode: DirectoryMode| {
        run_experiment(
            &ExpConfig::new(Algorithm::RadixCcsas, 1 << 11, 16)
                .radix_bits(6)
                .dist(Dist::Gauss)
                .seed(0)
                .scale(256)
                .directory_mode(mode),
        )
    };
    let full = run(DirectoryMode::FullMap);
    let lp = run(DirectoryMode::LimitedPointer(1));
    assert!(full.verified && lp.verified);

    let invalidations =
        |r: &ExpResult| r.events.iter().map(|e| e.invalidations).sum::<u64>();
    assert!(
        invalidations(&lp) > invalidations(&full),
        "overflow broadcasts must inflate invalidations: lp={} full={}",
        invalidations(&lp),
        invalidations(&full)
    );

    let permute_ns = |r: &ExpResult| {
        r.sections
            .iter()
            .filter(|(name, _)| name == "permute")
            .map(|(_, t)| t.total())
            .sum::<f64>()
    };
    assert!(
        permute_ns(&lp) > permute_ns(&full),
        "broadcast cost must land in the permutation phase: lp={} full={}",
        permute_ns(&lp),
        permute_ns(&full)
    );
    assert!(
        lp.parallel_ns > full.parallel_ns,
        "total time must grow too: lp={} full={}",
        lp.parallel_ns,
        full.parallel_ns
    );
}

/// Coarse-vector over-targeting also costs more than full-map, but less
/// imprecision (wider groups track fewer distinct sharers) can only add
/// invalidations, never remove them: full-map <= cv across group sizes.
#[test]
fn coarse_vector_cost_is_monotone_in_imprecision() {
    let run = |mode: DirectoryMode| {
        run_experiment(
            &ExpConfig::new(Algorithm::RadixCcsas, 1 << 11, 16)
                .radix_bits(6)
                .dist(Dist::Gauss)
                .seed(0)
                .scale(256)
                .directory_mode(mode),
        )
    };
    let invalidations =
        |r: &ExpResult| r.events.iter().map(|e| e.invalidations).sum::<u64>();
    let full = invalidations(&run(DirectoryMode::FullMap));
    let cv4 = invalidations(&run(DirectoryMode::CoarseVector(4)));
    assert!(cv4 >= full, "coarse groups must not shrink the bill: cv4={cv4} full={full}");
}
