//! The machine-invariant auditor must catch deliberately injected protocol
//! bugs — the audit layer's own acceptance test. `inject_stale_sharer`
//! plants exactly the state a coherence bug that skips an invalidation
//! would leave behind (a Shared copy the directory knows nothing about,
//! coexisting with another processor's Modified line) and `Machine::audit`
//! must flag it.

use ccsort::algos::dist::{generate, Dist};
use ccsort::algos::{radix, KEY_BITS};
use ccsort::machine::{DirectoryMode, Machine, MachineConfig, Placement};

#[test]
fn audit_is_clean_after_a_real_sort() {
    // Every sharer-set representation must leave a clean machine: the
    // audit's conservative-superset invariants hold for the imprecise
    // modes (overflowed limited-pointer, coarse groups) too.
    for mode in [
        DirectoryMode::FullMap,
        DirectoryMode::LimitedPointer(2),
        DirectoryMode::CoarseVector(2),
    ] {
        let n = 1 << 11;
        let p = 4;
        let cfg = MachineConfig::origin2000(p).scaled_down(256).with_directory_mode(mode);
        let mut m = Machine::new(cfg);
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
        let input = generate(Dist::Stagger, n, p, 8, 0);
        m.raw_mut(a).copy_from_slice(&input);
        radix::ccsas::sort(&mut m, [a, b], n, 8, KEY_BITS);
        assert_eq!(m.audit(), Vec::<String>::new(), "dir={mode}");
    }
}

#[test]
fn audit_catches_injected_skipped_invalidation() {
    let p = 4;
    let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(256));
    let a = m.alloc(256, Placement::Node(0), "a");
    // PEs 1 and 2 share the line, then PE 0's write invalidates both.
    m.read_at(1, a, 0);
    m.read_at(2, a, 0);
    m.write_at(0, a, 0, 7);
    assert!(m.audit().is_empty(), "correct protocol leaves a clean machine");
    // A protocol bug that skipped PE 2's invalidation leaves its stale
    // Shared copy in place; the audit must see it.
    m.inject_stale_sharer(2, a, 0);
    let errs = m.audit();
    assert!(!errs.is_empty(), "audit missed the injected coherence bug");
    assert!(
        errs.iter().any(|e| e.contains("absent from sharer set")),
        "unexpected violation set: {errs:?}"
    );
}

#[test]
fn copy_untimed_invalidates_other_pes_stale_destination_copies() {
    // Regression: `copy_untimed` mutates the backing store, so another
    // processor's cached copy of a destination line is stale afterwards —
    // it used to stay resident, and a later timed read there was accounted
    // as a hit on data the modelled hardware could never have delivered.
    let p = 4;
    let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(256));
    m.set_section_audit(true);
    m.section("setup");
    let src = m.alloc(256, Placement::Node(0), "src");
    let dst = m.alloc(256, Placement::Node(0), "dst");
    m.raw_mut(src)[0] = 99;
    m.write_at(0, dst, 0, 1); // initiator holds the dst line Modified
    m.read_at(1, dst, 4); // PE 1 caches the same dst line (Shared)
    m.section("copy");
    m.copy_untimed(0, src, 0, dst, 0, 32);
    assert_eq!(m.raw(dst)[0], 99);
    // PE 1's stale copy must be gone: its re-read misses.
    let misses = m.events(1).misses();
    m.read_at(1, dst, 4);
    assert!(m.events(1).misses() > misses, "stale copy survived copy_untimed");
    // The initiator performed the writes, so its own Modified copy is
    // exactly right and must survive: its re-read hits.
    let misses0 = m.events(0).misses();
    m.read_at(0, dst, 0);
    assert_eq!(m.events(0).misses(), misses0, "initiator's copy must stay cached");
    // And the phase boundary's full audit agrees the machine is healthy.
    m.section("after");
    assert_eq!(m.audit(), Vec::<String>::new());
}

#[test]
fn section_audit_mode_catches_corruption_at_phase_boundary() {
    let mut m = Machine::new(MachineConfig::origin2000(2).scaled_down(256));
    m.set_section_audit(true);
    let a = m.alloc(256, Placement::Node(0), "a");
    m.section("compute");
    m.write_at(0, a, 0, 1);
    m.inject_stale_sharer(1, a, 0);
    let boundary = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.section("exchange");
    }));
    assert!(boundary.is_err(), "per-section audit must panic on the corrupted machine");
}
