//! The machine-invariant auditor must catch deliberately injected protocol
//! bugs — the audit layer's own acceptance test. `inject_stale_sharer`
//! plants exactly the state a coherence bug that skips an invalidation
//! would leave behind (a Shared copy the directory knows nothing about,
//! coexisting with another processor's Modified line) and `Machine::audit`
//! must flag it.

use ccsort::algos::dist::{generate, Dist};
use ccsort::algos::{radix, KEY_BITS};
use ccsort::machine::{Machine, MachineConfig, Placement};

#[test]
fn audit_is_clean_after_a_real_sort() {
    let n = 1 << 11;
    let p = 4;
    let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(256));
    let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
    let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
    let input = generate(Dist::Stagger, n, p, 8, 0);
    m.raw_mut(a).copy_from_slice(&input);
    radix::ccsas::sort(&mut m, [a, b], n, 8, KEY_BITS);
    assert_eq!(m.audit(), Vec::<String>::new());
}

#[test]
fn audit_catches_injected_skipped_invalidation() {
    let p = 4;
    let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(256));
    let a = m.alloc(256, Placement::Node(0), "a");
    // PEs 1 and 2 share the line, then PE 0's write invalidates both.
    m.read_at(1, a, 0);
    m.read_at(2, a, 0);
    m.write_at(0, a, 0, 7);
    assert!(m.audit().is_empty(), "correct protocol leaves a clean machine");
    // A protocol bug that skipped PE 2's invalidation leaves its stale
    // Shared copy in place; the audit must see it.
    m.inject_stale_sharer(2, a, 0);
    let errs = m.audit();
    assert!(!errs.is_empty(), "audit missed the injected coherence bug");
    assert!(
        errs.iter().any(|e| e.contains("absent from sharer set")),
        "unexpected violation set: {errs:?}"
    );
}

#[test]
fn section_audit_mode_catches_corruption_at_phase_boundary() {
    let mut m = Machine::new(MachineConfig::origin2000(2).scaled_down(256));
    m.set_section_audit(true);
    let a = m.alloc(256, Placement::Node(0), "a");
    m.section("compute");
    m.write_at(0, a, 0, 1);
    m.inject_stale_sharer(1, a, 0);
    let boundary = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.section("exchange");
    }));
    assert!(boundary.is_err(), "per-section audit must panic on the corrupted machine");
}
