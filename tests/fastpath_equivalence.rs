//! The simulator's streamed-run fast path must be *exact*: for every
//! program, distribution and processor count, an experiment run with
//! `fast_path = false` (the legacy per-line walk) must produce bitwise
//! identical timing, per-PE breakdowns, section profiles and event-level
//! results to the default fast-path run.

use ccsort_algos::{run_experiment, Algorithm, Dist, ExpConfig};

/// Compare one configuration with the fast path on and off, field by
/// field. `ExpResult` has no `PartialEq`, so compare the serialisable
/// pieces explicitly — including the per-PE breakdowns and per-section
/// profiles, which would expose any divergence in where time is charged.
fn assert_equivalent(alg: Algorithm, n: usize, p: usize, r: u32, dist: Dist) {
    let base = |fast: bool| {
        run_experiment(
            &ExpConfig::new(alg, n, p).radix_bits(r).dist(dist).seed(99991).scale(64).fast_path(fast),
        )
    };
    let fast = base(true);
    let slow = base(false);
    let ctx = format!("{alg:?} n={n} p={p} r={r} {dist:?}");
    assert_eq!(fast.parallel_ns, slow.parallel_ns, "parallel_ns diverged: {ctx}");
    assert_eq!(fast.verified, slow.verified, "verification diverged: {ctx}");
    assert_eq!(fast.per_pe.len(), slow.per_pe.len(), "per_pe length diverged: {ctx}");
    for (pe, (f, s)) in fast.per_pe.iter().zip(&slow.per_pe).enumerate() {
        assert_eq!(f.busy, s.busy, "busy diverged pe{pe}: {ctx}");
        assert_eq!(f.lmem, s.lmem, "lmem diverged pe{pe}: {ctx}");
        assert_eq!(f.rmem, s.rmem, "rmem diverged pe{pe}: {ctx}");
        assert_eq!(f.sync, s.sync, "sync diverged pe{pe}: {ctx}");
    }
    assert_eq!(fast.sections.len(), slow.sections.len(), "section count diverged: {ctx}");
    for ((fname, f), (sname, s)) in fast.sections.iter().zip(&slow.sections) {
        assert_eq!(fname, sname, "section order diverged: {ctx}");
        assert_eq!(f.busy, s.busy, "section {fname} busy diverged: {ctx}");
        assert_eq!(f.lmem, s.lmem, "section {fname} lmem diverged: {ctx}");
        assert_eq!(f.rmem, s.rmem, "section {fname} rmem diverged: {ctx}");
        assert_eq!(f.sync, s.sync, "section {fname} sync diverged: {ctx}");
    }
}

const ALL_ALGS: [Algorithm; 9] = [
    Algorithm::RadixShmem,
    Algorithm::RadixCcsas,
    Algorithm::RadixCcsasNew,
    Algorithm::RadixMpiStaged,
    Algorithm::RadixMpiDirect,
    Algorithm::RadixMpiCoalesced,
    Algorithm::SampleShmem,
    Algorithm::SampleCcsas,
    Algorithm::SampleMpiDirect,
];

#[test]
fn fast_path_exact_across_programs() {
    for alg in ALL_ALGS {
        assert_equivalent(alg, 1 << 13, 8, 8, Dist::Gauss);
    }
}

#[test]
fn fast_path_exact_across_distributions() {
    for dist in Dist::ALL {
        assert_equivalent(Algorithm::RadixShmem, 1 << 13, 8, 8, dist);
        assert_equivalent(Algorithm::SampleCcsas, 1 << 13, 8, 11, dist);
    }
}

#[test]
fn fast_path_exact_across_processor_counts() {
    for p in [1, 2, 4, 16] {
        assert_equivalent(Algorithm::RadixShmem, 1 << 13, p, 8, Dist::Gauss);
        assert_equivalent(Algorithm::RadixMpiDirect, 1 << 13, p, 10, Dist::Gauss);
    }
}

#[test]
fn fast_path_exact_on_table2_radix_sizes() {
    // The Table 2 search sweeps radix sizes no other figure touches;
    // cover the full best-of set on the cell that is most sensitive.
    for r in [8, 10, 11, 12] {
        assert_equivalent(Algorithm::RadixShmem, 1 << 13, 8, r, Dist::Gauss);
    }
}
