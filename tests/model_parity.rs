//! Model parity: every programming-model variant of each sort is the same
//! algorithm over a different transport, so on identical input every
//! variant must produce **bit-identical** sorted output — not merely "some
//! sorted permutation". This is the behavioural half of the communicator
//! refactor's contract: the skeleton owns the algorithm, the communicator
//! only moves bytes, so no (skeleton, communicator) pairing may disagree
//! with any other.
//!
//! The grid deliberately includes a non-power-of-two processor count: the
//! uneven partition boundaries (`n mod p != 0`) are where an off-by-one in
//! a transport's offset arithmetic would first diverge.

use ccsort::algos::dist::{generate, Dist, KEY_BITS};
use ccsort::algos::sample::{self, SamplingStrategy};
use ccsort::algos::radix;
use ccsort::machine::{ArrayId, Machine, MachineConfig, Placement};
use ccsort::models::MpiMode;

const N: usize = 2048;
const R: u32 = 8;
const SEED: u64 = 4242;

/// Run one sort function on a fresh machine and return its output.
fn run(p: usize, dist: Dist, sort: impl FnOnce(&mut Machine, [ArrayId; 2]) -> ArrayId) -> Vec<u32> {
    let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(64));
    let a = m.alloc(N, Placement::Partitioned { parts: p }, "keys0");
    let b = m.alloc(N, Placement::Partitioned { parts: p }, "keys1");
    let input = generate(dist, N, p, R, SEED);
    m.raw_mut(a).copy_from_slice(&input);
    let out = sort(&mut m, [a, b]);
    m.raw(out).to_vec()
}

fn grid() -> Vec<(usize, Dist)> {
    let mut cells = Vec::new();
    for p in [4usize, 7] {
        for dist in [Dist::Gauss, Dist::Zero, Dist::Local] {
            cells.push((p, dist));
        }
    }
    cells
}

fn reference(p: usize, dist: Dist) -> Vec<u32> {
    let mut keys = generate(dist, N, p, R, SEED);
    keys.sort_unstable();
    keys
}

#[test]
fn all_radix_variants_agree_bit_for_bit() {
    type RadixSort = fn(&mut Machine, [ArrayId; 2], usize, u32, u32) -> ArrayId;
    let variants: [(&str, RadixSort); 7] = [
        ("radix-ccsas", radix::ccsas::sort),
        ("radix-ccsas-new", radix::ccsas_new::sort),
        ("radix-mpi-sgi", |m, k, n, r, kb| radix::mpi::sort(m, MpiMode::Staged, k, n, r, kb)),
        ("radix-mpi-new", |m, k, n, r, kb| radix::mpi::sort(m, MpiMode::Direct, k, n, r, kb)),
        ("radix-mpi-coalesced", |m, k, n, r, kb| {
            radix::mpi_coalesced::sort(m, MpiMode::Direct, k, n, r, kb)
        }),
        ("radix-shmem", radix::shmem::sort),
        ("radix-shmem-put", radix::shmem_put::sort),
    ];
    for (p, dist) in grid() {
        let expect = reference(p, dist);
        for (name, sort) in variants {
            let out = run(p, dist, |m, keys| sort(m, keys, N, R, KEY_BITS));
            assert_eq!(out, expect, "{name} diverged at p={p}, {dist:?}");
        }
    }
}

#[test]
fn all_sample_models_agree_bit_for_bit() {
    let models = [
        ("sample-ccsas", sample::Model::Ccsas),
        ("sample-mpi-sgi", sample::Model::Mpi(MpiMode::Staged)),
        ("sample-mpi-new", sample::Model::Mpi(MpiMode::Direct)),
        ("sample-shmem", sample::Model::Shmem),
    ];
    for (p, dist) in grid() {
        let expect = reference(p, dist);
        for (name, model) in models {
            let out = run(p, dist, |m, keys| {
                sample::sort_with(m, model, keys, N, R, KEY_BITS, SamplingStrategy::default())
            });
            assert_eq!(out, expect, "{name} diverged at p={p}, {dist:?}");
        }
    }
}
