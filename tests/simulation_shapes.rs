//! The paper's qualitative findings, asserted as invariants of the
//! simulator at test scale. These are the shape criteria of DESIGN.md §3,
//! each on a grid small enough for CI but large enough for the effect to
//! be visible.

use ccsort::algos::{run_experiment, run_sequential_baseline, Algorithm, Dist, ExpConfig};

const SCALE: usize = 64;

fn time(alg: Algorithm, n: usize, p: usize, r: u32) -> f64 {
    let res = run_experiment(&ExpConfig::new(alg, n, p).radix_bits(r).scale(SCALE));
    assert!(res.verified);
    res.parallel_ns
}

/// Figure 1: the direct-transfer MPI beats the staged vendor-style MPI for
/// radix sort.
#[test]
fn direct_mpi_beats_staged_mpi_for_radix() {
    let n = 1 << 16;
    let p = 16;
    let staged = time(Algorithm::RadixMpiStaged, n, p, 8);
    let direct = time(Algorithm::RadixMpiDirect, n, p, 8);
    assert!(
        staged > 1.1 * direct,
        "staged {staged} must be well above direct {direct}"
    );
}

/// Figure 2: the gap between the MPI implementations is smaller for sample
/// sort than for radix sort.
#[test]
fn mpi_gap_is_smaller_for_sample_sort() {
    let n = 1 << 16;
    let p = 16;
    let radix_gap = time(Algorithm::RadixMpiStaged, n, p, 8) / time(Algorithm::RadixMpiDirect, n, p, 8);
    let sample_gap =
        time(Algorithm::SampleMpiStaged, n, p, 11) / time(Algorithm::SampleMpiDirect, n, p, 11);
    assert!(
        radix_gap > sample_gap,
        "radix gap {radix_gap} should exceed sample gap {sample_gap}"
    );
}

/// Figure 3 (large sets): the original CC-SAS radix sort collapses under
/// protocol traffic; SHMEM is the best model; the restructured CC-SAS-NEW
/// recovers most of the gap but not all of it.
#[test]
fn ccsas_radix_collapses_at_large_sizes_and_new_recovers() {
    // "16M" label at this scale; 32 processors, where the paper's contrast
    // is strong (Figure 3 middle panel).
    let n = 1 << 18;
    let p = 32;
    let ccsas = time(Algorithm::RadixCcsas, n, p, 8);
    let ccsas_new = time(Algorithm::RadixCcsasNew, n, p, 8);
    let shmem = time(Algorithm::RadixShmem, n, p, 8);
    assert!(ccsas > 1.5 * shmem, "original CC-SAS ({ccsas}) must collapse vs SHMEM ({shmem})");
    assert!(ccsas_new < 0.8 * ccsas, "CC-SAS-NEW ({ccsas_new}) must recover most of the gap");
    assert!(ccsas_new > shmem, "but still trail SHMEM ({shmem})");
}

/// Figure 3 (small sets): CC-SAS wins at the smallest size and the
/// restructured version is *slower* than the original there.
#[test]
fn ccsas_radix_wins_small_sets_and_buffering_hurts_there() {
    // The paper's 1M-key configuration at *full* machine scale on 64
    // processors — where it reports the CC-SAS exception (Section 4.2).
    // Scaled-down machines shrink the per-(process, digit) chunks below a
    // cache line and manufacture false sharing, so this test runs unscaled.
    let n = 1 << 20;
    let p = 64;
    let t1 = |alg| {
        let res = run_experiment(&ExpConfig::new(alg, n, p).radix_bits(8).scale(1));
        assert!(res.verified);
        res.parallel_ns
    };
    let ccsas = t1(Algorithm::RadixCcsas);
    let ccsas_new = t1(Algorithm::RadixCcsasNew);
    let shmem = t1(Algorithm::RadixShmem);
    let mpi = t1(Algorithm::RadixMpiDirect);
    assert!(ccsas < shmem, "CC-SAS ({ccsas}) must beat SHMEM ({shmem}) on the smallest set");
    assert!(ccsas < mpi, "CC-SAS ({ccsas}) must beat MPI ({mpi}) on the smallest set");
    assert!(ccsas_new > ccsas, "buffering ({ccsas_new}) must not pay off at the smallest set ({ccsas})");
}

/// Figure 4: the per-processor breakdown of the large-set radix sort —
/// CC-SAS is memory-dominated; MPI has more SYNC than SHMEM.
#[test]
fn radix_breakdowns_have_paper_structure() {
    // "4M" label at scale 2 on 32 processors, the regime of Figure 4's
    // MPI-vs-SHMEM SYNC contrast (many chunks per pair saturating the
    // 1-deep mailboxes).
    let n = 1 << 21;
    let p = 32;
    let ccsas = run_experiment(&ExpConfig::new(Algorithm::RadixCcsas, n, p).scale(2));
    let mpi = run_experiment(&ExpConfig::new(Algorithm::RadixMpiDirect, n, p).scale(2));
    let shmem = run_experiment(&ExpConfig::new(Algorithm::RadixShmem, n, p).scale(2));
    let c = ccsas.mean_breakdown();
    assert!(c.mem() > c.busy, "CC-SAS radix must be memory-dominated: {c:?}");
    let m = mpi.mean_breakdown();
    let s = shmem.mean_breakdown();
    assert!(m.sync > s.sync, "MPI sync {m:?} must exceed SHMEM sync {s:?}");
    assert!(m.total() > s.total(), "MPI total must exceed SHMEM total");
}

/// Figure 5: the `local` distribution (no key movement) is not slower than
/// Gauss; `remote` moves everything yet stays in the same ballpark.
#[test]
fn distribution_effects_on_radix() {
    let n = 1 << 16;
    let p = 16;
    let t = |dist| {
        let res = run_experiment(
            &ExpConfig::new(Algorithm::RadixShmem, n, p).radix_bits(8).dist(dist).scale(SCALE),
        );
        assert!(res.verified);
        res.parallel_ns
    };
    let gauss = t(Dist::Gauss);
    let local = t(Dist::Local);
    let remote = t(Dist::Remote);
    assert!(local <= gauss * 1.02, "local ({local}) must not exceed gauss ({gauss})");
    assert!(remote < gauss * 1.3, "remote ({remote}) must stay within 1.3x of gauss ({gauss})");
}

/// Figure 6: more passes (radix 6) cost more than radix 8 once data is
/// non-trivial; the biggest tables prefer bigger digits.
#[test]
fn radix_size_tradeoff() {
    let p = 16;
    let big = 1 << 18;
    let t6 = time(Algorithm::RadixShmem, big, p, 6);
    let t8 = time(Algorithm::RadixShmem, big, p, 8);
    let t11 = time(Algorithm::RadixShmem, big, p, 11);
    assert!(t6 > t8, "radix 6 (6 passes, {t6}) must lose to radix 8 ({t8}) at large n");
    // Radix 11 (3 passes) is within 1.6x either way of radix 8 at this size.
    assert!(t11 < 1.6 * t8 && t8 < 1.6 * t11);
}

/// Figure 7/8: sample sort is busier (two local sorts) but lighter on
/// communication than radix sort.
#[test]
fn sample_sort_trades_communication_for_local_work() {
    let n = 1 << 16;
    let p = 16;
    let radix = run_experiment(&ExpConfig::new(Algorithm::RadixShmem, n, p).radix_bits(8).scale(SCALE));
    let sample = run_experiment(&ExpConfig::new(Algorithm::SampleShmem, n, p).radix_bits(8).scale(SCALE));
    let rb = radix.mean_breakdown();
    let sb = sample.mean_breakdown();
    assert!(sb.busy > rb.busy, "sample busy {sb:?} must exceed radix busy {rb:?}");
    let radix_msgs: u64 = radix.events.iter().map(|e| e.messages).sum();
    let sample_msgs: u64 = sample.events.iter().map(|e| e.messages).sum();
    assert!(
        sample_msgs < radix_msgs,
        "sample sort ({sample_msgs} msgs) must send fewer messages than radix ({radix_msgs})"
    );
}

/// Tables 2/3: the crossover — sample sort wins for small per-processor
/// data, radix sort for large.
#[test]
fn sample_vs_radix_crossover() {
    let p = 16;
    let small = 1 << 14; // 1K keys per processor
    let large = 1 << 19; // 32K keys per processor
    let radix_small = time(Algorithm::RadixShmem, small, p, 8);
    let sample_small = time(Algorithm::SampleShmem, small, p, 11);
    assert!(
        sample_small < radix_small,
        "sample ({sample_small}) must win at small sizes vs radix ({radix_small})"
    );
    let radix_large = time(Algorithm::RadixShmem, large, p, 8);
    let sample_large = time(Algorithm::SampleShmem, large, p, 11);
    assert!(
        radix_large < sample_large,
        "radix ({radix_large}) must win at large sizes vs sample ({sample_large})"
    );
}

/// Speedups behave: more processors help, and large data sets show the
/// paper's superlinear capacity effect.
#[test]
fn speedups_scale_and_go_superlinear() {
    let n = 1 << 18;
    let seq = run_sequential_baseline(n, 8, Dist::Gauss, 271828, SCALE, 1);
    assert!(seq.verified);
    let t8 = time(Algorithm::RadixShmem, n, 8, 8);
    let t32 = time(Algorithm::RadixShmem, n, 32, 8);
    assert!(t32 < t8, "32 procs ({t32}) must beat 8 procs ({t8})");
    let speedup32 = seq.time_ns / t32;
    assert!(speedup32 > 32.0, "expected superlinear speedup at 32 procs, got {speedup32}");
}

/// Determinism across repeated runs: bit-identical times and breakdowns.
#[test]
fn simulation_is_deterministic() {
    let cfg = ExpConfig::new(Algorithm::SampleCcsas, 1 << 14, 8).radix_bits(11).scale(SCALE);
    let a = run_experiment(&cfg);
    let b = run_experiment(&cfg);
    assert_eq!(a.parallel_ns, b.parallel_ns);
    assert_eq!(a.per_pe, b.per_pe);
    assert_eq!(a.events, b.events);
}
