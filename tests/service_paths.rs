//! Deterministic coverage of the sorting service — threaded executors,
//! the coalescing batcher's split-back, backpressure, and steady-state
//! scratch reuse — sized for the curated ThreadSanitizer CI tier: real
//! threads, real condvar wake-ups and batch claims, no proptest loops.
//!
//! (The arbitrary-split / arbitrary-flush-timing equivalence properties
//! live in `tests/prop_service.rs`; this file is the fixed-seed subset
//! whose behaviour is identical on every run, so a TSan report here is
//! always reproducible.)

use ccsort::parallel::{par_radix_sort_pairs_with, par_radix_sort_with};
use ccsort::service::{ServiceConfig, SortService, SubmitError};

/// Deterministic keys (splitmix64) — the same arrays on every run.
fn keys(n: usize, seed: u64) -> Vec<u32> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u32
        })
        .collect()
}

fn keys64(n: usize, seed: u64) -> Vec<u64> {
    keys(n, seed).into_iter().map(|k| (k as u64) << 3 | (seed & 7)).collect()
}

/// Mixed request sizes spanning both engine regimes (sequential fallback
/// and the threaded engine once batched).
fn sizes() -> Vec<usize> {
    (0..48).map(|i| [3, 17, 64, 130, 511, 1024][i % 6] + i).collect()
}

#[test]
fn threaded_service_matches_solo_sorts_u32() {
    let svc = SortService::start(ServiceConfig {
        executors: 3,
        max_wait_us: 50,
        max_batch_bytes: 1 << 14,
        ..ServiceConfig::default()
    })
    .unwrap();
    let cfg = ServiceConfig::default().sort;
    let tickets: Vec<_> = sizes()
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let input = keys(n, 0xA000 + i as u64);
            let mut solo = input.clone();
            par_radix_sort_with(&mut solo, &cfg);
            (svc.submit_u32(input).unwrap(), solo)
        })
        .collect();
    for (t, solo) in tickets {
        assert_eq!(t.wait().keys, solo, "service reply diverges from solo sort");
    }
    let stats = svc.shutdown();
    assert_eq!(stats.completed, 48);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn threaded_service_pairs_are_stable_and_identical() {
    let svc = SortService::start(ServiceConfig {
        executors: 2,
        max_wait_us: 50,
        ..ServiceConfig::default()
    })
    .unwrap();
    let cfg = ServiceConfig::default().sort;
    let tickets: Vec<_> = (0..24)
        .map(|i| {
            // Few distinct keys → heavy duplication, so stability is load-
            // bearing: payloads of equal keys must keep submission order.
            let n = 200 + 13 * i;
            let k: Vec<u64> = keys64(n, i as u64).iter().map(|x| x % 9).collect();
            let v: Vec<u64> = (0..n as u64).collect();
            let (mut sk, mut sv) = (k.clone(), v.clone());
            par_radix_sort_pairs_with(&mut sk, &mut sv, &cfg);
            (svc.submit_pairs_u64(k, v).unwrap(), sk, sv)
        })
        .collect();
    for (t, sk, sv) in tickets {
        let r = t.wait();
        assert_eq!((r.keys, r.vals), (sk, sv), "pairs reply diverges from solo sort");
    }
    svc.shutdown();
}

#[test]
fn backpressure_is_bounded_and_explicit() {
    // Deterministic overload: no executor drains the queue, so admission
    // control is the only thing standing between the client and the
    // service's memory. The bound must hold exactly and every request
    // past it must be rejected explicitly with its buffers intact.
    let limit = 16usize;
    let svc = SortService::start(ServiceConfig {
        executors: 0,
        queue_limit: limit,
        ..ServiceConfig::default()
    })
    .unwrap();
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for i in 0..4 * limit {
        let input = keys(32, i as u64);
        match svc.submit_u32(input.clone()) {
            Ok(t) => accepted.push((t, input)),
            Err(SubmitError::Rejected { keys: k, pending, .. }) => {
                assert_eq!(k, input, "rejected buffer must come back untouched");
                assert_eq!(pending, limit, "rejection must happen exactly at the bound");
                rejected += 1;
            }
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
        assert!(svc.pending() <= limit, "queue exceeded its bound");
    }
    assert_eq!(accepted.len(), limit);
    assert_eq!(rejected, 3 * limit as u64);
    assert_eq!(svc.stats().rejected, rejected);
    // The accepted requests still complete correctly after the storm.
    svc.drain_all();
    for (t, input) in accepted {
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(t.wait().keys, expect);
    }
    let stats = svc.shutdown();
    assert_eq!(stats.completed, limit as u64);
}

#[test]
fn steady_state_serving_allocates_no_scratch() {
    // Same-shaped waves through the deterministic drain: after the first
    // wave has shaped every engine buffer, the reallocation counter must
    // go flat — the data plane allocates nothing per request.
    let svc = SortService::start(ServiceConfig {
        executors: 0,
        max_batch_bytes: 1 << 16,
        ..ServiceConfig::default()
    })
    .unwrap();
    let mut warm = None;
    for wave in 0..4u64 {
        let tickets: Vec<_> = (0..16)
            .map(|i| svc.submit_u32(keys(256, wave * 100 + i)).unwrap())
            .collect();
        svc.drain_all();
        for t in tickets {
            let r = t.wait();
            assert!(r.keys.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(r.batch_requests, 16, "whole wave should share one batch");
        }
        match warm {
            None => warm = Some(svc.stats().scratch_reallocations),
            Some(w) => assert_eq!(
                svc.stats().scratch_reallocations,
                w,
                "steady-state wave {wave} grew an engine buffer"
            ),
        }
    }
    svc.shutdown();
}

#[test]
fn flush_window_completes_a_lone_request() {
    // A single tiny request at idle must not wait for the byte threshold:
    // the max_wait_us window flushes it. `wait()` blocking forever here
    // would be the bug; no drain call is made.
    let svc = SortService::start(ServiceConfig {
        executors: 1,
        max_wait_us: 100,
        max_batch_bytes: usize::MAX >> 1,
        ..ServiceConfig::default()
    })
    .unwrap();
    let t = svc.submit_u64(vec![5, 2, 9, 1]).unwrap();
    assert_eq!(t.wait().keys, vec![1, 2, 5, 9]);
    svc.shutdown();
}
