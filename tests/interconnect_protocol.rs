//! Acceptance tests for the pluggable interconnect (`InterconnectKind`) and
//! coherence-protocol (`ProtocolMode`) layers: neither axis may change
//! *what* the machine computes — sorted output is bit-identical across
//! every topology × protocol combination — while each must change the
//! *costs* in the direction its hardware would: the mesh's longer routes
//! raise average latency over the hypercube's, and the Dragon update mode
//! trades invalidation misses for update traffic.

use ccsort::algos::dist::generate;
use ccsort::algos::{radix, run_experiment, Algorithm, Dist, ExpConfig, ExpResult, KEY_BITS};
use ccsort::machine::{
    InterconnectKind, Machine, MachineConfig, Placement, ProtocolMode, Topology,
};
use ccsort_audit::{audit_simulated, Point};

const TOPOLOGIES: [InterconnectKind; 3] =
    [InterconnectKind::Hypercube, InterconnectKind::Mesh2D, InterconnectKind::FatTree(4)];
const PROTOCOLS: [ProtocolMode; 2] = [ProtocolMode::Invalidate, ProtocolMode::DragonUpdate];

/// The headline acceptance criterion: radix sort output is bit-identical
/// across every topology × protocol combination at both the real machine's
/// p = 64 and the scaled-up p = 256, with a clean end-of-run machine audit
/// in each — the new layers change hop counts and protocol traffic, never
/// state.
#[test]
fn radix_output_is_mode_independent_at_p64_and_p256() {
    for p in [64usize, 256] {
        let (n, r) = (1 << 12, 6u32);
        let input = generate(Dist::Gauss, n, p, r, 7);
        let mut expect = input.clone();
        expect.sort_unstable();

        let mut reference: Option<Vec<u32>> = None;
        for topo in TOPOLOGIES {
            for proto in PROTOCOLS {
                let cfg = MachineConfig::origin2000(p)
                    .scaled_down(256)
                    .with_interconnect(topo)
                    .with_protocol(proto);
                let mut m = Machine::new(cfg);
                let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
                let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
                m.raw_mut(a).copy_from_slice(&input);
                let out = radix::ccsas::sort(&mut m, [a, b], n, r, KEY_BITS);
                let sorted = m.raw(out).to_vec();
                assert_eq!(sorted, expect, "p={p} {topo}/{proto}: output not sorted input");
                assert_eq!(
                    m.audit(),
                    Vec::<String>::new(),
                    "p={p} {topo}/{proto}: machine audit failed"
                );
                match &reference {
                    None => reference = Some(sorted),
                    Some(first) => assert_eq!(
                        &sorted, first,
                        "p={p} {topo}/{proto}: output differs across modes"
                    ),
                }
            }
        }
    }
}

/// Same independence for the sample sort through the experiment driver
/// (which cross-checks the output against `sort_unstable` internally) —
/// its splitter exchange shares lines far more widely than the radix
/// permutation, so it leans on the Dragon write-to-shared transitions.
#[test]
fn sample_sort_verifies_in_every_mode_at_p64_and_p256() {
    for p in [64usize, 256] {
        for topo in TOPOLOGIES {
            for proto in PROTOCOLS {
                let res = run_experiment(
                    &ExpConfig::new(Algorithm::SampleCcsas, 1 << 12, p)
                        .radix_bits(6)
                        .dist(Dist::Stagger)
                        .seed(7)
                        .scale(256)
                        .interconnect(topo)
                        .protocol(proto),
                );
                assert!(res.verified, "p={p} {topo}/{proto}: output not a sorted permutation");
            }
        }
    }
}

/// Topology economics, end to end: at equal p the mesh's Θ(√R) routes make
/// the average remote fetch dearer than the hypercube's Θ(log R) routes,
/// so the machine-level average latency — and a remote-heavy radix sort's
/// parallel time — must both be strictly larger on the mesh.
#[test]
fn mesh_is_slower_than_hypercube_at_equal_p() {
    let p = 64usize;
    let cube = Topology::new(&MachineConfig::origin2000(p));
    let mesh =
        Topology::new(&MachineConfig::origin2000(p).with_interconnect(InterconnectKind::Mesh2D));
    assert!(
        mesh.avg_latency(0) > cube.avg_latency(0),
        "mesh avg latency {} must exceed hypercube {}",
        mesh.avg_latency(0),
        cube.avg_latency(0)
    );

    let run = |topo: InterconnectKind| {
        run_experiment(
            &ExpConfig::new(Algorithm::RadixCcsas, 1 << 12, p)
                .radix_bits(6)
                .dist(Dist::Gauss)
                .seed(0)
                .scale(256)
                .interconnect(topo),
        )
    };
    let on_cube = run(InterconnectKind::Hypercube);
    let on_mesh = run(InterconnectKind::Mesh2D);
    assert!(on_cube.verified && on_mesh.verified);
    assert!(
        on_mesh.parallel_ns > on_cube.parallel_ns,
        "remote-heavy sort must pay the longer mesh routes: mesh={} cube={}",
        on_mesh.parallel_ns,
        on_cube.parallel_ns
    );
}

/// Dragon economics at the phase level: a producer/consumer sharing phase
/// (readers establish copies, the writer re-writes the region each round)
/// charges its cost as invalidations + re-read misses under the invalidate
/// protocol, and as update multicasts — with the readers' copies surviving
/// — under Dragon. The assertion pins both directions of the shift within
/// that phase: Dragon pays update messages and suffers strictly fewer
/// remote misses; invalidate pays invalidations and zero updates.
#[test]
fn dragon_shifts_phase_cost_from_invalidation_misses_to_updates() {
    let run = |proto: ProtocolMode| {
        let cfg = MachineConfig::origin2000(4).scaled_down(256).with_protocol(proto);
        let mut m = Machine::new(cfg);
        let n = 1 << 8;
        let a = m.alloc(n, Placement::Partitioned { parts: 4 }, "shared");
        // Phase 0: every PE reads the whole array — all lines end Shared
        // everywhere.
        for pe in 0..4 {
            m.touch_run(pe, a, 0, n, false);
        }
        m.barrier();
        // Sharing phase: the writer re-writes the region, the readers
        // re-read it, repeatedly. Per round, invalidate pays one
        // invalidation multicast per line then three remote re-misses;
        // Dragon pays one update multicast per *write* and the readers
        // keep hitting.
        let sharing_phase_start: Vec<_> = (0..4).map(|pe| m.events(pe)).collect();
        for _ in 0..4 {
            m.touch_run(0, a, 0, n, true);
            m.barrier();
            for pe in 1..4 {
                m.touch_run(pe, a, 0, n, false);
            }
            m.barrier();
        }
        m.resolve_phase();
        let delta_inv: u64 =
            (0..4).map(|pe| m.events(pe).invalidations - sharing_phase_start[pe].invalidations).sum();
        let delta_upd: u64 =
            (0..4).map(|pe| m.events(pe).updates - sharing_phase_start[pe].updates).sum();
        let delta_remote: u64 =
            (0..4).map(|pe| m.events(pe).misses_remote - sharing_phase_start[pe].misses_remote).sum();
        assert_eq!(m.audit(), Vec::<String>::new(), "{proto}: machine audit failed");
        (delta_inv, delta_upd, delta_remote)
    };

    let (inv_inv, inv_upd, inv_remote) = run(ProtocolMode::Invalidate);
    let (drg_inv, drg_upd, drg_remote) = run(ProtocolMode::DragonUpdate);

    assert!(inv_inv > 0, "invalidate must invalidate in the sharing phase");
    assert_eq!(inv_upd, 0, "invalidate must never send updates");
    assert!(drg_upd > 0, "Dragon must send updates in the sharing phase");
    assert_eq!(drg_inv, 0, "Dragon must not invalidate in the sharing phase");
    assert!(
        drg_remote < inv_remote,
        "updates must spare the readers their re-read misses: dragon={drg_remote} inv={inv_remote}"
    );
}

/// Every new mode runs clean through the audit oracle — all eleven
/// simulator programs with section audits and the race detector on — at a
/// point with odd p (the ragged-grid / partial-tree shapes).
#[test]
fn new_modes_pass_the_audit_oracle() {
    for (topo, proto) in [
        (InterconnectKind::Mesh2D, ProtocolMode::Invalidate),
        (InterconnectKind::FatTree(4), ProtocolMode::Invalidate),
        (InterconnectKind::Hypercube, ProtocolMode::DragonUpdate),
        (InterconnectKind::Mesh2D, ProtocolMode::DragonUpdate),
    ] {
        let pt = Point {
            dist: Dist::Stagger,
            n: 1 << 9,
            p: 3,
            r: 6,
            seed: 0,
            scale: 256,
            dir: ccsort::machine::DirectoryMode::FullMap,
            topo,
            proto,
        };
        let errs = audit_simulated(&pt, &Algorithm::ALL);
        assert_eq!(errs, Vec::<String>::new(), "{topo}/{proto}");
    }
}

/// The new axes compose with the directory representations: an imprecise
/// directory under Dragon over-targets *updates* instead of invalidations,
/// and the sort still verifies with a clean audit.
#[test]
fn modes_compose_with_imprecise_directories() {
    use ccsort::machine::DirectoryMode;
    for dir in [DirectoryMode::LimitedPointer(2), DirectoryMode::CoarseVector(4)] {
        let res = run_experiment(
            &ExpConfig::new(Algorithm::RadixCcsas, 1 << 11, 16)
                .radix_bits(6)
                .dist(Dist::Gauss)
                .seed(0)
                .scale(256)
                .directory_mode(dir)
                .interconnect(InterconnectKind::FatTree(2))
                .protocol(ProtocolMode::DragonUpdate),
        );
        assert!(res.verified, "dir={dir}: output not a sorted permutation");
        let updates: u64 = res.events.iter().map(|e| e.updates).sum();
        assert!(updates > 0, "dir={dir}: Dragon radix run sent no updates");
    }
}

/// Whole-sort event bill: the same radix experiment under both protocols —
/// Dragon's update total replaces (most of) invalidate's invalidation
/// total, and the output stays verified either way.
#[test]
fn dragon_trades_invalidations_for_updates_end_to_end() {
    let run = |proto: ProtocolMode| {
        run_experiment(
            &ExpConfig::new(Algorithm::RadixCcsas, 1 << 11, 16)
                .radix_bits(6)
                .dist(Dist::Gauss)
                .seed(0)
                .scale(256)
                .protocol(proto),
        )
    };
    let sum = |r: &ExpResult, f: fn(&ccsort::machine::EventCounters) -> u64| {
        r.events.iter().map(f).sum::<u64>()
    };
    let inv = run(ProtocolMode::Invalidate);
    let drg = run(ProtocolMode::DragonUpdate);
    assert!(inv.verified && drg.verified);
    assert!(sum(&inv, |e| e.invalidations) > 0);
    assert_eq!(sum(&inv, |e| e.updates), 0, "invalidate protocol must not send updates");
    assert!(sum(&drg, |e| e.updates) > 0, "Dragon radix run must send updates");
    assert!(
        sum(&drg, |e| e.invalidations) < sum(&inv, |e| e.invalidations),
        "Dragon must invalidate less: dragon={} inv={}",
        sum(&drg, |e| e.invalidations),
        sum(&inv, |e| e.invalidations)
    );
}
