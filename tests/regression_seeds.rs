//! Deterministic re-runs of the shrunk proptest counterexamples checked in
//! under `tests/prop_simulator.proptest-regressions`. The proptest harness
//! replays those seeds too, but only when the installed proptest version
//! reproduces the same case from the hash; these tests pin the exact
//! configurations forever.

use ccsort::algos::dist::{generate, Dist, MAX_KEY};
use ccsort::algos::{run_experiment, Algorithm, ExpConfig};

/// `cc 85501424… shrinks to alg = RadixCcsas, dist = Stagger, n_shift = 10,
/// p = 3, r = 6, seed = 0`
#[test]
fn regression_radix_ccsas_stagger_p3() {
    let cfg = ExpConfig::new(Algorithm::RadixCcsas, 1 << 10, 3)
        .radix_bits(6)
        .dist(Dist::Stagger)
        .seed(0)
        .scale(256);
    let res = run_experiment(&cfg);
    assert!(res.verified, "{cfg:?} produced unsorted output");
    assert!(res.parallel_ns > 0.0);
    assert_eq!(res.per_pe.len(), 3);
    for b in &res.per_pe {
        assert!(b.busy >= 0.0 && b.lmem >= 0.0 && b.rmem >= 0.0 && b.sync >= 0.0);
        assert!(
            b.total() <= res.parallel_ns * (1.0 + 1e-9),
            "bucket total {} exceeds parallel time {}",
            b.total(),
            res.parallel_ns
        );
    }
}

/// `cc ffee44e2… shrinks to dist = Stagger, n = 64, p = 7, r = 6, seed = 0`
#[test]
fn regression_stagger_n64_p7() {
    let keys = generate(Dist::Stagger, 64, 7, 6, 0);
    assert_eq!(keys.len(), 64);
    assert!(keys.iter().all(|&k| (k as u64) < MAX_KEY));
    assert_eq!(generate(Dist::Stagger, 64, 7, 6, 0), keys);
}

/// The same two configurations swept across every algorithm: the simulator
/// must produce a verified sorted permutation for Stagger at odd `p`.
#[test]
fn stagger_odd_p_all_algorithms_verify() {
    for &alg in Algorithm::ALL.iter() {
        for &(n, p) in &[(1usize << 10, 3usize), (1 << 10, 7)] {
            let cfg = ExpConfig::new(alg, n, p)
                .radix_bits(6)
                .dist(Dist::Stagger)
                .seed(0)
                .scale(256);
            let res = run_experiment(&cfg);
            assert!(res.verified, "{alg:?} n={n} p={p} produced unsorted output");
        }
    }
}
