//! Property-based tests for the real threaded sorting library: for
//! arbitrary inputs, every sort is a permutation-preserving ordering
//! identical to the standard library's.

use ccsort::parallel::msg::radix_sort_msg;
use ccsort::parallel::sym::radix_sort_shmem;
use ccsort::parallel::{
    par_radix_sort_with, par_sample_sort_with, seq_radix_sort, RadixSortConfig, SampleSortConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn seq_radix_matches_std(mut v in proptest::collection::vec(any::<u32>(), 0..4000), bits in 1u32..=16) {
        let mut expect = v.clone();
        expect.sort_unstable();
        seq_radix_sort(&mut v, bits);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn seq_radix_matches_std_signed(mut v in proptest::collection::vec(any::<i64>(), 0..2000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        seq_radix_sort(&mut v, 11);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn par_radix_matches_std(
        mut v in proptest::collection::vec(any::<u32>(), 0..6000),
        chunks in 1usize..12,
        bits in 4u32..=12,
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        par_radix_sort_with(&mut v, &RadixSortConfig {
            radix_bits: bits,
            chunks: Some(chunks),
            sequential_cutoff: 0,
        });
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn par_sample_matches_std(
        mut v in proptest::collection::vec(any::<u64>(), 0..6000),
        parts in 1usize..10,
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        par_sample_sort_with(&mut v, &SampleSortConfig {
            parts: Some(parts),
            sequential_cutoff: 0,
            ..Default::default()
        });
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn par_sample_handles_low_cardinality(
        mut v in proptest::collection::vec(0u32..8, 0..6000),
        parts in 1usize..10,
    ) {
        // Massive duplication: exercises the tied-splitter spreading.
        let mut expect = v.clone();
        expect.sort_unstable();
        par_sample_sort_with(&mut v, &SampleSortConfig {
            parts: Some(parts),
            sequential_cutoff: 0,
            ..Default::default()
        });
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn msg_radix_matches_std(
        mut v in proptest::collection::vec(any::<u32>(), 0..3000),
        p in 1usize..7,
        bits in 6u32..=11,
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_msg(&mut v, p, bits);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn shmem_radix_matches_std(
        mut v in proptest::collection::vec(any::<u32>(), 0..3000),
        p in 1usize..7,
        bits in 6u32..=11,
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_shmem(&mut v, p, bits);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn msg_radix_handles_non_power_of_two_p(
        mut v in proptest::collection::vec(any::<u32>(), 64..2000),
        p in prop::sample::select(vec![3usize, 5, 6, 7, 63]),
        bits in prop::sample::select(vec![5u32, 7, 9, 11]),
    ) {
        // Both checked-in regression seeds sat at odd p; sweep the real
        // threaded sorts across non-power-of-two process counts (and
        // non-power-of-two digit widths, hence odd bin counts) too.
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_msg(&mut v, p, bits);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn shmem_radix_handles_non_power_of_two_p(
        mut v in proptest::collection::vec(any::<u32>(), 64..2000),
        p in prop::sample::select(vec![3usize, 5, 6, 7, 63]),
        bits in prop::sample::select(vec![5u32, 7, 9, 11]),
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_shmem(&mut v, p, bits);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn all_sorts_agree_pairwise(v in proptest::collection::vec(any::<u32>(), 0..3000)) {
        let mut a = v.clone();
        let mut b = v.clone();
        let mut c = v;
        par_radix_sort_with(&mut a, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        par_sample_sort_with(&mut b, &SampleSortConfig { sequential_cutoff: 0, ..Default::default() });
        radix_sort_msg(&mut c, 3, 8);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }
}
