//! Property-based tests for the real threaded sorting library: for
//! arbitrary inputs, every sort is a permutation-preserving ordering
//! identical to the standard library's.

use ccsort::parallel::msg::radix_sort_msg;
use ccsort::parallel::pairs::{par_radix_sort_pairs_with, radix_sort_pairs};
use ccsort::parallel::sym::radix_sort_shmem;
use ccsort::parallel::{
    par_radix_sort_with, par_sample_sort_with, seq_radix_sort, RadixSortConfig, SampleSortConfig,
};
use proptest::prelude::*;

/// Build a `RadixSortConfig` covering the whole mechanism space —
/// coalescing buffer size (including none and sub-cache-line sizes), work
/// stealing with varying granularity, fused histogramming, digit width,
/// and non-power-of-two worker counts — from sampled scalars.
fn build_config(
    radix_bits: u32,
    chunks: usize,
    coalesce_sel: usize,
    work_stealing: bool,
    steal_granularity: usize,
    fused_histogram: bool,
) -> RadixSortConfig {
    let coalesce_bytes = [None, Some(4), Some(64), Some(256), Some(1024)][coalesce_sel % 5];
    RadixSortConfig {
        radix_bits,
        chunks: Some(chunks),
        sequential_cutoff: 0,
        coalesce_bytes,
        work_stealing,
        steal_granularity,
        fused_histogram,
    }
}

/// Build an input that stresses the new paths: 0 = uniform, 1 = zipf-like
/// skew (a hot value dominating one radix bucket plus a tail), 2 =
/// duplicate-heavy (8 distinct values), 3 = nearly sorted.
fn build_input(shape: usize, n: usize, seed: u64) -> Vec<u32> {
    let mut s = seed | 1;
    let mut next = move || {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (s >> 33) as u32
    };
    match shape % 4 {
        0 => (0..n).map(|_| next()).collect(),
        1 => (0..n)
            .map(|_| match next() % 7 {
                0..=3 => 0xDEAD_BEEF,
                4 | 5 => next() % 16,
                _ => next(),
            })
            .collect(),
        2 => (0..n).map(|_| next() % 8).collect(),
        _ => {
            let mut v: Vec<u32> = (0..n as u32).collect();
            for _ in 0..n / 50 {
                let i = next() as usize % n.max(1);
                let j = next() as usize % n.max(1);
                v.swap(i, j);
            }
            v
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn seq_radix_matches_std(mut v in proptest::collection::vec(any::<u32>(), 0..4000), bits in 1u32..=16) {
        let mut expect = v.clone();
        expect.sort_unstable();
        seq_radix_sort(&mut v, bits);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn seq_radix_matches_std_signed(mut v in proptest::collection::vec(any::<i64>(), 0..2000)) {
        let mut expect = v.clone();
        expect.sort_unstable();
        seq_radix_sort(&mut v, 11);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn par_radix_matches_std(
        mut v in proptest::collection::vec(any::<u32>(), 0..6000),
        chunks in 1usize..12,
        bits in 4u32..=12,
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        par_radix_sort_with(&mut v, &RadixSortConfig {
            radix_bits: bits,
            chunks: Some(chunks),
            sequential_cutoff: 0,
            ..Default::default()
        });
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn par_sample_matches_std(
        mut v in proptest::collection::vec(any::<u64>(), 0..6000),
        parts in 1usize..10,
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        par_sample_sort_with(&mut v, &SampleSortConfig {
            parts: Some(parts),
            sequential_cutoff: 0,
            ..Default::default()
        });
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn par_sample_handles_low_cardinality(
        mut v in proptest::collection::vec(0u32..8, 0..6000),
        parts in 1usize..10,
    ) {
        // Massive duplication: exercises the tied-splitter spreading.
        let mut expect = v.clone();
        expect.sort_unstable();
        par_sample_sort_with(&mut v, &SampleSortConfig {
            parts: Some(parts),
            sequential_cutoff: 0,
            ..Default::default()
        });
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn msg_radix_matches_std(
        mut v in proptest::collection::vec(any::<u32>(), 0..3000),
        p in 1usize..7,
        bits in 6u32..=11,
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_msg(&mut v, p, bits);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn shmem_radix_matches_std(
        mut v in proptest::collection::vec(any::<u32>(), 0..3000),
        p in 1usize..7,
        bits in 6u32..=11,
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_shmem(&mut v, p, bits);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn msg_radix_handles_non_power_of_two_p(
        mut v in proptest::collection::vec(any::<u32>(), 64..2000),
        p in prop::sample::select(vec![3usize, 5, 6, 7, 63]),
        bits in prop::sample::select(vec![5u32, 7, 9, 11]),
    ) {
        // Both checked-in regression seeds sat at odd p; sweep the real
        // threaded sorts across non-power-of-two process counts (and
        // non-power-of-two digit widths, hence odd bin counts) too.
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_msg(&mut v, p, bits);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn shmem_radix_handles_non_power_of_two_p(
        mut v in proptest::collection::vec(any::<u32>(), 64..2000),
        p in prop::sample::select(vec![3usize, 5, 6, 7, 63]),
        bits in prop::sample::select(vec![5u32, 7, 9, 11]),
    ) {
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_shmem(&mut v, p, bits);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn par_radix_any_config_matches_std(
        shape in 0usize..4,
        n in 0usize..6000,
        seed in any::<u64>(),
        bits in 4u32..=12,
        chunks in prop::sample::select(vec![1usize, 2, 3, 5, 7, 8, 13]),
        coalesce_sel in 0usize..5,
        ws in any::<bool>(),
        gran in prop::sample::select(vec![1usize, 2, 8]),
        fused in any::<bool>(),
    ) {
        // The coalesced, work-stealing, and fused paths (and every
        // combination, including sub-cache-line staging buffers and
        // non-power-of-two worker counts) are bit-identical to std.
        let cfg = build_config(bits, chunks, coalesce_sel, ws, gran, fused);
        let mut v = build_input(shape, n, seed);
        let mut expect = v.clone();
        expect.sort_unstable();
        par_radix_sort_with(&mut v, &cfg);
        prop_assert_eq!(v, expect);
    }

    #[test]
    fn par_radix_pairs_any_config_stable(
        shape in 0usize..4,
        n in 0usize..4000,
        seed in any::<u64>(),
        bits in 4u32..=12,
        chunks in prop::sample::select(vec![1usize, 2, 3, 5, 7, 8, 13]),
        coalesce_sel in 0usize..5,
        ws in any::<bool>(),
        gran in prop::sample::select(vec![1usize, 2, 8]),
        fused in any::<bool>(),
    ) {
        // Payloads record original positions, so the unique stable order
        // doubles as the oracle: any scheduling- or buffering-induced
        // reordering of equal keys would diverge from the sequential sort.
        let cfg = build_config(bits, chunks, coalesce_sel, ws, gran, fused);
        let keys = build_input(shape, n, seed);
        let vals: Vec<u32> = (0..keys.len() as u32).collect();
        let (mut ks, mut vs) = (keys.clone(), vals.clone());
        radix_sort_pairs(&mut ks, &mut vs, cfg.radix_bits);
        let (mut kp, mut vp) = (keys, vals);
        par_radix_sort_pairs_with(&mut kp, &mut vp, &cfg);
        prop_assert_eq!(kp, ks);
        prop_assert_eq!(vp, vs);
    }

    #[test]
    fn simple_config_agrees_with_default(
        shape in 0usize..4,
        n in 0usize..4000,
        seed in any::<u64>(),
    ) {
        let mut v = build_input(shape, n, seed);
        let mut simple = v.clone();
        par_radix_sort_with(
            &mut simple,
            &RadixSortConfig { sequential_cutoff: 0, ..RadixSortConfig::simple() },
        );
        par_radix_sort_with(&mut v, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        prop_assert_eq!(v, simple);
    }

    #[test]
    fn all_sorts_agree_pairwise(v in proptest::collection::vec(any::<u32>(), 0..3000)) {
        let mut a = v.clone();
        let mut b = v.clone();
        let mut c = v;
        par_radix_sort_with(&mut a, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        par_sample_sort_with(&mut b, &SampleSortConfig { sequential_cutoff: 0, ..Default::default() });
        radix_sort_msg(&mut c, 3, 8);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }
}
