//! Cross-crate integration: the simulated sorting programs, the real
//! threaded sorts and the in-process runtime sorts must all agree with the
//! standard library on every distribution the paper studies.

use ccsort::algos::dist::{generate, Dist};
use ccsort::algos::{run_experiment, Algorithm, ExpConfig};
use ccsort::parallel::msg::radix_sort_msg;
use ccsort::parallel::sym::radix_sort_shmem;
use ccsort::parallel::{par_radix_sort_with, par_sample_sort_with, RadixSortConfig, SampleSortConfig};

const N: usize = 1 << 14;
const P: usize = 8;
const R: u32 = 8;

fn reference(dist: Dist, seed: u64) -> (Vec<u32>, Vec<u32>) {
    let input = generate(dist, N, P, R, seed);
    let mut sorted = input.clone();
    sorted.sort_unstable();
    (input, sorted)
}

#[test]
fn every_simulated_algorithm_matches_std_on_every_distribution() {
    for dist in Dist::ALL {
        let (_, expect) = reference(dist, 42);
        for alg in Algorithm::ALL {
            let res = run_experiment(
                &ExpConfig::new(alg, N, P).radix_bits(R).dist(dist).seed(42).scale(64),
            );
            assert!(res.verified, "{alg:?} on {dist:?} failed verification");
            let _ = &expect;
        }
    }
}

#[test]
fn real_parallel_sorts_match_std_on_paper_distributions() {
    for dist in Dist::ALL {
        let (input, expect) = reference(dist, 7);

        let mut a = input.clone();
        par_radix_sort_with(&mut a, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
        assert_eq!(a, expect, "par_radix_sort on {dist:?}");

        let mut b = input.clone();
        par_sample_sort_with(&mut b, &SampleSortConfig { sequential_cutoff: 0, ..Default::default() });
        assert_eq!(b, expect, "par_sample_sort on {dist:?}");

        let mut c = input.clone();
        radix_sort_msg(&mut c, 4, R);
        assert_eq!(c, expect, "radix_sort_msg on {dist:?}");

        let mut d = input;
        radix_sort_shmem(&mut d, 4, R);
        assert_eq!(d, expect, "radix_sort_shmem on {dist:?}");
    }
}

#[test]
fn simulated_and_real_sorts_agree_with_each_other() {
    let (input, _) = reference(Dist::Gauss, 99);
    // Simulated SHMEM radix result equals the real rayon radix result.
    let res = run_experiment(
        &ExpConfig::new(Algorithm::RadixShmem, N, P).radix_bits(R).dist(Dist::Gauss).seed(99).scale(64),
    );
    assert!(res.verified);
    let mut real = input;
    par_radix_sort_with(&mut real, &RadixSortConfig { sequential_cutoff: 0, ..Default::default() });
    // Both were verified against the same std sort, so transitively equal;
    // check the ends as a direct spot check.
    assert!(real.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn facade_verify_sorted_works() {
    assert!(ccsort::verify_sorted(&[1, 2, 2, 3]));
    assert!(!ccsort::verify_sorted(&[2, 1]));
    assert!(ccsort::verify_sorted::<u32>(&[]));
}
