//! The batched scatter/gather engine must be *exact*: a schedule submitted
//! through `scatter_run`/`gather_run` must leave the machine in the same
//! observable state as the identical schedule issued element by element
//! through `write_at`/`read_at`, and the batched walk under
//! `fast_path = true` must match the per-element reference walk
//! (`fast_path = false`) bit for bit — times, per-PE breakdowns, section
//! profiles, event counters, memory contents and race verdicts. Modeled on
//! `fastpath_equivalence.rs`, which covers the streamed fast path the same
//! way.

use ccsort_algos::{run_experiment, Algorithm, Dist, ExpConfig};
use ccsort_machine::{
    ArrayId, EventCounters, Machine, MachineConfig, Placement, RaceReport, TimeBreakdown,
};

// ---------------------------------------------------------------------
// Machine-level: batched vs per-element, fast path vs reference walk.
// ---------------------------------------------------------------------

/// Everything observable about a machine after a run. `Eq` on this struct
/// is the equivalence claim: every field must match bit for bit.
#[derive(Debug, Clone, PartialEq)]
struct Snapshot {
    parallel_ns: f64,
    now: Vec<f64>,
    breakdowns: Vec<TimeBreakdown>,
    events: Vec<EventCounters>,
    sections: Vec<(&'static str, TimeBreakdown)>,
    data: Vec<u32>,
    shared: Vec<u32>,
    gathered: Vec<u32>,
    races: Vec<RaceReport>,
    suppressed: u64,
    coherence: Vec<String>,
}

const P: usize = 4;
const N: usize = 1 << 12;
const SHARED_N: usize = 256;
const BATCH: usize = 512;

/// One deterministic scatter/gather schedule: per-PE batches with duplicate
/// indices inside the PE's own partition (race-free), plus overlapping
/// batches on a small shared array that produce genuine cross-PE races —
/// so the race-verdict comparison covers both the all-clean bulk path and
/// the report/suppression path.
fn run_schedule(batched: bool, fast: bool, race: bool) -> Snapshot {
    let mut cfg = MachineConfig::origin2000(P);
    cfg.fast_path = fast;
    cfg.race_detector = race;
    let mut m = Machine::new(cfg);
    let arr = m.alloc(N, Placement::Partitioned { parts: P }, "data");
    let shared = m.alloc(SHARED_N, Placement::Node(0), "shared");
    let chunk = N / P;

    let scatter = |m: &mut Machine, pe: usize, a: ArrayId, idxs: &[usize], vals: &[u32]| {
        if batched {
            m.scatter_run(pe, a, idxs, vals);
        } else {
            for (&idx, &v) in idxs.iter().zip(vals) {
                m.write_at(pe, a, idx, v);
            }
        }
    };
    let gather = |m: &mut Machine, pe: usize, a: ArrayId, idxs: &[usize], out: &mut [u32]| {
        if batched {
            m.gather_run(pe, a, idxs, out);
        } else {
            for (&idx, o) in idxs.iter().zip(out.iter_mut()) {
                *o = m.read_at(pe, a, idx);
            }
        }
    };

    let mut x = 0x1234_5678_9ABC_DEF0u64;
    let mut lcg = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        x
    };
    let mut gathered = Vec::new();

    m.section("scatter-gather");
    let mut idxs = vec![0usize; BATCH];
    let mut vals = vec![0u32; BATCH];
    for _pass in 0..3 {
        for pe in 0..P {
            // Own-partition batch with duplicate indices: exercises
            // last-write-wins ordering and the same-line/same-page hints.
            for i in 0..BATCH {
                let r = lcg();
                idxs[i] = pe * chunk + (r >> 33) as usize % chunk;
                vals[i] = r as u32;
            }
            scatter(&mut m, pe, arr, &idxs, &vals);
            let mut out = vec![0u32; BATCH];
            gather(&mut m, pe, arr, &idxs, &mut out);
            gathered.extend_from_slice(&out);

            // Conflicting shared-array batch: every PE hits the same small
            // index set within one phase — real races under the detector.
            let sidxs: Vec<usize> = (0..32).map(|i| (i * 7) % SHARED_N).collect();
            let svals: Vec<u32> = (0..32).map(|i| (pe * 1000 + i) as u32).collect();
            scatter(&mut m, pe, shared, &sidxs, &svals);
            let mut sout = vec![0u32; 32];
            gather(&mut m, pe, shared, &sidxs, &mut sout);
            gathered.extend_from_slice(&sout);
        }
        m.barrier();
    }

    Snapshot {
        parallel_ns: m.parallel_time(),
        now: (0..P).map(|pe| m.now(pe)).collect(),
        breakdowns: (0..P).map(|pe| m.breakdown(pe)).collect(),
        events: (0..P).map(|pe| m.events(pe)).collect(),
        sections: m.section_profile(),
        data: m.raw(arr).to_vec(),
        shared: m.raw(shared).to_vec(),
        gathered,
        races: m.race_reports().to_vec(),
        suppressed: m.race_suppressed(),
        coherence: m.check_coherence(),
    }
}

/// The 4-way comparison: {batched, per-element} × {fast path, reference}
/// must all produce the identical machine state, with the race detector
/// both off and on.
#[test]
fn batched_schedule_matches_per_element_full_state() {
    for race in [false, true] {
        let reference = run_schedule(false, false, race);
        if race {
            assert!(!reference.races.is_empty(), "schedule must provoke races");
        }
        for (batched, fast) in [(false, true), (true, false), (true, true)] {
            let got = run_schedule(batched, fast, race);
            assert_eq!(
                got, reference,
                "state diverged: batched={batched} fast={fast} race={race}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Experiment-level: the real sorting programs, which now submit their
// permutation writes and sample gathers through the batched engine.
// ---------------------------------------------------------------------

/// Compare one configuration with the fast path on and off, field by field
/// (same shape as `fastpath_equivalence::assert_equivalent`, plus the race
/// detector toggle: the detector must never change the simulated time).
fn assert_equivalent(alg: Algorithm, n: usize, p: usize, r: u32, dist: Dist, race: bool) {
    let base = |fast: bool| {
        run_experiment(
            &ExpConfig::new(alg, n, p)
                .radix_bits(r)
                .dist(dist)
                .seed(99991)
                .scale(64)
                .fast_path(fast)
                .race_detector(race),
        )
    };
    let fast = base(true);
    let slow = base(false);
    let ctx = format!("{alg:?} n={n} p={p} r={r} {dist:?} race={race}");
    assert_eq!(fast.parallel_ns, slow.parallel_ns, "parallel_ns diverged: {ctx}");
    assert_eq!(fast.verified, slow.verified, "verification diverged: {ctx}");
    assert_eq!(fast.per_pe, slow.per_pe, "per-PE breakdowns diverged: {ctx}");
    assert_eq!(fast.events, slow.events, "event counters diverged: {ctx}");
    assert_eq!(fast.sections, slow.sections, "section profiles diverged: {ctx}");
}

/// Scatter-heavy programs: all five radix permutation call sites plus the
/// sample sorts (batched sampling gathers + `local_radix_sort` scatters).
const SCATTER_HEAVY: [Algorithm; 6] = [
    Algorithm::RadixCcsas,
    Algorithm::RadixCcsasNew,
    Algorithm::RadixShmem,
    Algorithm::RadixMpiDirect,
    Algorithm::RadixMpiCoalesced,
    Algorithm::SampleCcsas,
];

#[test]
fn batched_paths_exact_across_programs() {
    for alg in SCATTER_HEAVY {
        assert_equivalent(alg, 1 << 13, 8, 8, Dist::Gauss, false);
    }
}

#[test]
fn batched_paths_exact_with_detector_on() {
    for alg in [Algorithm::RadixCcsas, Algorithm::RadixShmem, Algorithm::SampleCcsas] {
        assert_equivalent(alg, 1 << 13, 8, 8, Dist::Gauss, true);
    }
}

#[test]
fn batched_paths_exact_across_distributions() {
    // Remote/local stress the TLB and the remote-write arms; zero stresses
    // duplicate destinations.
    for dist in [Dist::Random, Dist::Zero, Dist::Remote, Dist::Local, Dist::Stagger] {
        assert_equivalent(Algorithm::RadixCcsas, 1 << 13, 8, 8, dist, false);
    }
}

#[test]
fn batched_paths_exact_across_processor_counts() {
    for p in [1, 2, 4, 16] {
        assert_equivalent(Algorithm::RadixCcsas, 1 << 13, p, 8, Dist::Gauss, false);
        assert_equivalent(Algorithm::SampleCcsas, 1 << 13, p, 8, Dist::Gauss, p == 4);
    }
}
