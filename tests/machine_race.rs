//! The happens-before race detector must catch deliberately planted
//! missing-barrier bugs — the detector's own acceptance test, the analogue
//! of `machine_audit.rs` for synchronization instead of coherence.
//!
//! The simulator runs bulk-synchronously, so a program missing a barrier
//! still produces sorted output under the deterministic schedule — the bug
//! is invisible to differential testing. `inject_missing_barrier` plants
//! exactly that bug (one barrier keeps its timing but loses its
//! happens-before edge) and the detector must fire, for every one of the
//! paper's eleven programs; conversely the unmodified programs must be
//! race-free across a quick parameter matrix.

use ccsort::algos::{run_experiment_audited, Algorithm, Dist, ExpConfig};
use ccsort::machine::{Machine, MachineConfig, Placement, RaceKind};
use ccsort_audit::{audit_simulated, Point};

fn machine(p: usize) -> Machine {
    let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(256));
    m.set_race_detector(true);
    m
}

#[test]
fn machine_paths_report_unordered_conflicts() {
    let mut m = machine(2);
    let a = m.alloc(256, Placement::Node(0), "shared");
    m.write_at(0, a, 3, 7);
    m.read_at(1, a, 3);
    let reports = m.race_reports();
    assert_eq!(reports.len(), 1, "{reports:?}");
    assert_eq!(reports[0].kind, RaceKind::WriteThenRead);
    assert_eq!((reports[0].prev_pe, reports[0].pe), (0, 1));
    let msg = reports[0].to_string();
    assert!(msg.contains("shared[3]"), "report must name the element: {msg}");
}

#[test]
fn barrier_separated_conflicts_are_clean() {
    let mut m = machine(2);
    let a = m.alloc(256, Placement::Node(0), "shared");
    m.write_at(0, a, 3, 7);
    m.barrier();
    assert_eq!(m.read_at(1, a, 3), 7);
    // And a bulk transfer over data someone else wrote, barrier-separated.
    let b = m.alloc(256, Placement::Node(0), "dst");
    m.barrier();
    m.dma_copy(1, a, 0, b, 0, 64, true);
    assert_eq!(m.race_reports(), &[], "suppressed={}", m.race_suppressed());
}

#[test]
fn wait_until_is_not_a_happens_before_edge() {
    // `wait_until` orders virtual time, not memory: a program using it as
    // its only "synchronization" for a data handoff is racy and the
    // detector must say so.
    let mut m = machine(2);
    let a = m.alloc(256, Placement::Node(0), "flagged");
    m.write_at(0, a, 0, 1);
    let t = m.now(0);
    m.wait_until(1, t + 100.0);
    m.read_at(1, a, 0);
    assert_eq!(m.race_reports().len(), 1);
}

/// The core acceptance requirement: for every one of the eleven simulator
/// programs, removing some barrier's happens-before edge produces a
/// detected race — while the output stays a sorted permutation (the
/// schedule is unchanged), which is exactly why differential testing alone
/// cannot catch this bug class.
#[test]
fn detector_fires_on_injected_missing_barrier_for_every_algorithm() {
    for alg in Algorithm::ALL {
        let mut fired = false;
        for nth in 1..=40 {
            let cfg = ExpConfig::new(alg, 1 << 10, 4)
                .radix_bits(6)
                .dist(Dist::Gauss)
                .seed(0)
                .scale(256)
                .inject_missing_barrier(nth);
            let (res, violations) = run_experiment_audited(&cfg);
            assert!(
                res.verified,
                "{}: injection must not perturb the run itself (barrier {nth})",
                alg.name()
            );
            if violations.iter().any(|v| v.contains("data race")) {
                fired = true;
                break;
            }
        }
        assert!(
            fired,
            "{}: detector silent though a barrier edge was removed (tried 1..=40)",
            alg.name()
        );
    }
}

/// Zero false positives: the unmodified programs across a quick matrix of
/// distributions and processor counts (including odd p) are race-free.
#[test]
fn quick_matrix_is_race_free() {
    for dist in [Dist::Gauss, Dist::Stagger, Dist::Remote, Dist::Zero] {
        for p in [3usize, 4] {
            let pt = Point {
                dist,
                n: 1 << 9,
                p,
                r: 6,
                seed: 0,
                scale: 256,
                dir: ccsort::machine::DirectoryMode::FullMap,
                topo: ccsort::machine::InterconnectKind::Hypercube,
                proto: ccsort::machine::ProtocolMode::Invalidate,
            };
            let errs = audit_simulated(&pt, &Algorithm::ALL);
            assert_eq!(errs, Vec::<String>::new());
        }
    }
}
