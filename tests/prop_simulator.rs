//! Property-based tests for the simulator stack: any (algorithm, size,
//! processor count, radix, distribution) combination sorts correctly, time
//! accounting is positive and consistent, and the machine's invariants
//! hold. Every generated case runs through the audit layer — the machine
//! invariant auditor (`Machine::audit`) and the distribution validator
//! (`ccsort_audit::validate_dist`) — not just output verification.

use ccsort::algos::dist::{generate, Dist, MAX_KEY};
use ccsort::algos::{run_experiment_audited, Algorithm, ExpConfig};
use ccsort::machine::{Machine, MachineConfig, Placement};
use ccsort_audit::validate_dist;
use proptest::prelude::*;

fn arb_dist() -> impl Strategy<Value = Dist> {
    prop::sample::select(Dist::ALL.to_vec())
}

fn arb_alg() -> impl Strategy<Value = Algorithm> {
    prop::sample::select(Algorithm::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_experiment_verifies_and_accounts_time(
        alg in arb_alg(),
        dist in arb_dist(),
        n_shift in 10usize..13,
        p in 1usize..10,
        r in 6u32..=11,
        seed in 0u64..1000,
    ) {
        let n = 1 << n_shift;
        let cfg = ExpConfig::new(alg, n, p).radix_bits(r).dist(dist).seed(seed).scale(256);
        let (res, violations) = run_experiment_audited(&cfg);
        prop_assert!(violations.is_empty(), "{:?} machine audit: {:?}", cfg, violations);
        prop_assert!(res.verified, "{:?} produced unsorted output", cfg);
        prop_assert!(res.parallel_ns > 0.0);
        prop_assert_eq!(res.per_pe.len(), p);
        // Every processor's clock equals the sum of its buckets.
        for b in &res.per_pe {
            prop_assert!(b.busy >= 0.0 && b.lmem >= 0.0 && b.rmem >= 0.0 && b.sync >= 0.0);
            prop_assert!(b.total() <= res.parallel_ns * (1.0 + 1e-9));
        }
    }

    #[test]
    fn distributions_stay_in_range_and_are_deterministic(
        dist in arb_dist(),
        n in 64usize..4096,
        p in 1usize..16,
        r in 6u32..=12,
        seed in 0u64..1000,
    ) {
        let n = n.max(p);
        let keys = generate(dist, n, p, r, seed);
        prop_assert_eq!(keys.len(), n);
        prop_assert!(keys.iter().all(|&k| (k as u64) < MAX_KEY));
        prop_assert_eq!(generate(dist, n, p, r, seed), keys);
        // Shape properties: window permutations, digit locality, coverage.
        let errs = validate_dist(dist, n, p, r, seed);
        prop_assert!(errs.is_empty(), "distribution validator: {:?}", errs);
    }

    #[test]
    fn machine_reads_return_last_write(
        writes in proptest::collection::vec((0usize..512, any::<u32>()), 1..200),
        p in 1usize..5,
    ) {
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(256));
        let arr = m.alloc(512, Placement::Partitioned { parts: p }, "a");
        let mut shadow = vec![0u32; 512];
        for (i, &(idx, v)) in writes.iter().enumerate() {
            let pe = i % p;
            m.write_at(pe, arr, idx, v);
            shadow[idx] = v;
        }
        for (idx, &v) in shadow.iter().enumerate() {
            let pe = idx % p;
            prop_assert_eq!(m.read_at(pe, arr, idx), v);
        }
    }

    #[test]
    fn machine_time_is_monotone_per_processor(
        ops in proptest::collection::vec((0usize..256, any::<bool>()), 1..300),
    ) {
        let mut m = Machine::new(MachineConfig::origin2000(4).scaled_down(256));
        let arr = m.alloc(256, Placement::Interleaved, "a");
        let mut last = [0.0f64; 4];
        for (i, &(idx, write)) in ops.iter().enumerate() {
            let pe = i % 4;
            if write {
                m.write_at(pe, arr, idx, i as u32);
            } else {
                m.read_at(pe, arr, idx);
            }
            prop_assert!(m.now(pe) >= last[pe]);
            last[pe] = m.now(pe);
        }
        m.barrier();
        let t = m.now(0);
        for pe in 0..4 {
            prop_assert!((m.now(pe) - t).abs() < 1e-9, "barrier must align clocks");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After any random access sequence, the caches and the directory must
    /// agree on every line's ownership (the coherence invariants listed on
    /// `Machine::check_coherence`).
    #[test]
    fn coherence_invariants_hold_after_random_accesses(
        ops in proptest::collection::vec((0usize..4, 0usize..512, any::<bool>()), 1..400),
    ) {
        let mut m = Machine::new(MachineConfig::origin2000(4).scaled_down(256));
        let arr = m.alloc(512, Placement::Partitioned { parts: 4 }, "a");
        for &(pe, idx, write) in &ops {
            if write {
                m.write_at(pe, arr, idx, idx as u32);
            } else {
                m.read_at(pe, arr, idx);
            }
        }
        let errs = m.audit();
        prop_assert!(errs.is_empty(), "audit violations: {:?}", &errs[..errs.len().min(5)]);
    }

    /// DMA transfers must also leave the protocol state consistent.
    #[test]
    fn coherence_invariants_hold_after_dma(
        ops in proptest::collection::vec((0usize..4, 0usize..448, 1usize..64, any::<bool>()), 1..60),
    ) {
        let mut m = Machine::new(MachineConfig::origin2000(4).scaled_down(256));
        let a = m.alloc(512, Placement::Partitioned { parts: 4 }, "a");
        let b = m.alloc(512, Placement::Partitioned { parts: 4 }, "b");
        for &(pe, off, len, install) in &ops {
            let len = len.min(512 - off);
            m.dma_copy(pe, a, off, b, off, len, install);
            m.read_at(pe, a, off); // interleave coherent traffic
            m.write_at((pe + 1) % 4, b, off, 1);
        }
        let errs = m.audit();
        prop_assert!(errs.is_empty(), "audit violations: {:?}", &errs[..errs.len().min(5)]);
    }

    /// A full simulated sort leaves a consistent machine behind.
    #[test]
    fn coherence_invariants_hold_after_sorts(
        alg in arb_alg(),
        seed in 0u64..100,
    ) {
        use ccsort::algos::dist::generate;
        use ccsort::algos::KEY_BITS;
        let n = 1 << 11;
        let p = 4;
        let mut m = Machine::new(MachineConfig::origin2000(p).scaled_down(256));
        let a = m.alloc(n, Placement::Partitioned { parts: p }, "k0");
        let b = m.alloc(n, Placement::Partitioned { parts: p }, "k1");
        let input = generate(Dist::Gauss, n, p, 8, seed);
        m.raw_mut(a).copy_from_slice(&input);
        use ccsort::models::MpiMode;
        use ccsort::algos::{radix, sample};
        match alg {
            Algorithm::RadixCcsas => { radix::ccsas::sort(&mut m, [a, b], n, 8, KEY_BITS); }
            Algorithm::RadixCcsasNew => { radix::ccsas_new::sort(&mut m, [a, b], n, 8, KEY_BITS); }
            Algorithm::RadixMpiStaged => { radix::mpi::sort(&mut m, MpiMode::Staged, [a, b], n, 8, KEY_BITS); }
            Algorithm::RadixMpiDirect => { radix::mpi::sort(&mut m, MpiMode::Direct, [a, b], n, 8, KEY_BITS); }
            Algorithm::RadixMpiCoalesced => { radix::mpi_coalesced::sort(&mut m, MpiMode::Direct, [a, b], n, 8, KEY_BITS); }
            Algorithm::RadixShmem => { radix::shmem::sort(&mut m, [a, b], n, 8, KEY_BITS); }
            Algorithm::RadixShmemPut => { radix::shmem_put::sort(&mut m, [a, b], n, 8, KEY_BITS); }
            Algorithm::SampleCcsas => { sample::ccsas::sort(&mut m, [a, b], n, 8, KEY_BITS); }
            Algorithm::SampleMpiStaged => { sample::mpi::sort(&mut m, MpiMode::Staged, [a, b], n, 8, KEY_BITS); }
            Algorithm::SampleMpiDirect => { sample::mpi::sort(&mut m, MpiMode::Direct, [a, b], n, 8, KEY_BITS); }
            Algorithm::SampleShmem => { sample::shmem::sort(&mut m, [a, b], n, 8, KEY_BITS); }
        }
        let errs = m.audit();
        prop_assert!(errs.is_empty(), "audit violations after {alg:?}: {:?}", &errs[..errs.len().min(5)]);
    }
}
