//! Integration tests of the in-process programming-model runtimes: SPMD
//! programs combining collectives, one-sided transfers and the library's
//! utilities must agree with their shared-memory equivalents.

use std::sync::Arc;

use ccsort::parallel::msg::spawn_spmd;
use ccsort::parallel::sym::SymHeap;
use ccsort::parallel::{exclusive_prefix_sum, par_digit_histogram};

/// A distributed histogram over the message-passing runtime equals the
/// rayon histogram.
#[test]
fn distributed_histogram_matches_parallel_histogram() {
    let n = 1 << 16;
    let keys: Vec<u32> = (0..n as u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as u32)
        .collect();
    let expect = par_digit_histogram(&keys, 8, 8);

    let ranks = 4;
    let keys = Arc::new(keys);
    let results = spawn_spmd::<Vec<usize>, _, _>(ranks, |comm| {
        let me = comm.rank();
        let slice = &keys[me * n / ranks..(me + 1) * n / ranks];
        let mut local = vec![0usize; 256];
        for k in slice {
            local[((k >> 8) & 255) as usize] += 1;
        }
        comm.allreduce(local, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect())
    });
    for r in &results {
        assert_eq!(*r, expect);
    }
}

/// A ring pipeline over the symmetric heap: each PE puts a token to its
/// right neighbour for `rounds` epochs; the token accumulates every PE's
/// contribution exactly once per lap.
#[test]
fn symmetric_heap_ring_pipeline() {
    let p = 5;
    let rounds = 2 * p;
    let heap: Arc<SymHeap<u64>> = Arc::new(SymHeap::new(p, 2));
    heap.run(|ctx| {
        // Slot 0 = inbound token, slot 1 = scratch. PE 0 starts the token.
        if ctx.pe() == 0 {
            // SAFETY: own segment, before first barrier.
            unsafe { ctx.local_mut()[0] = 1 };
        }
        ctx.barrier();
        for round in 0..rounds {
            // The PE holding the token this round forwards token + own id.
            let holder = round % ctx.n_pes();
            if ctx.pe() == holder {
                // SAFETY: own slot 0 is stable this epoch; destination slot
                // is written only by us.
                let token = unsafe { ctx.local_mut()[0] };
                let next = (ctx.pe() + 1) % ctx.n_pes();
                unsafe { ctx.put(&[token + ctx.pe() as u64], next, 0) };
            }
            ctx.barrier();
        }
    });
    // After 2 laps the token accumulated 2 * sum(0..p) on top of 1.
    let mut heap = Arc::try_unwrap(heap).unwrap_or_else(|_| panic!("heap still shared"));
    let holder = rounds % p;
    let expect = 1 + 2 * (p as u64 * (p as u64 - 1) / 2);
    assert_eq!(heap.segment_mut(holder)[0], expect);
}

/// Broadcast + prefix sum: the root computes bucket offsets and broadcasts
/// them; every rank sees identical offsets.
#[test]
fn broadcast_distributes_scan_results() {
    let results = spawn_spmd::<Vec<usize>, _, _>(6, |comm| {
        let counts = comm.allgather(vec![comm.rank() + 1]);
        let mut flat: Vec<usize> = counts.into_iter().flatten().collect();
        let offsets = if comm.rank() == 0 {
            let total = exclusive_prefix_sum(&mut flat);
            assert_eq!(total, 21);
            Some(flat)
        } else {
            None
        };
        comm.broadcast(0, offsets)
    });
    for r in &results {
        assert_eq!(*r, vec![0, 1, 3, 6, 10, 15]);
    }
}

/// The runtimes compose: a mini map-reduce where each rank sorts its shard
/// with the shared-memory sort and the ranks merge via alltoallv.
#[test]
fn runtimes_compose_with_library_sorts() {
    let n = 1 << 14;
    let keys: Vec<u32> = (0..n as u64)
        .map(|i| (i.wrapping_mul(0x2545F4914F6CDD1D) >> 33) as u32)
        .collect();
    let mut expect = keys.clone();
    expect.sort_unstable();

    let p = 4;
    let keys = Arc::new(keys);
    let mut shards = spawn_spmd::<Vec<u32>, _, _>(p, |comm| {
        let me = comm.rank();
        let mut mine: Vec<u32> = keys[me * n / p..(me + 1) * n / p].to_vec();
        ccsort::parallel::seq_radix_sort(&mut mine, 8);
        // Range-partition by the top two bits and exchange.
        let outbound: Vec<Vec<u32>> = (0..p)
            .map(|b| {
                let lo = (b as u64 * (1u64 << 31) / p as u64) as u32;
                let hi = ((b as u64 + 1) * (1u64 << 31) / p as u64) as u32;
                mine.iter().copied().filter(|&k| k >= lo && (k < hi || b == p - 1)).collect()
            })
            .collect();
        let inbound = comm.alltoallv(outbound);
        let mut region: Vec<u32> = inbound.into_iter().flatten().collect();
        ccsort::parallel::seq_radix_sort(&mut region, 8);
        region
    });
    let merged: Vec<u32> = shards.drain(..).flatten().collect();
    assert_eq!(merged, expect);
}
