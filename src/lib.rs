//! # ccsort
//!
//! Parallel sorting on cache-coherent DSM multiprocessors — a Rust
//! reproduction of Shan & Singh, *Parallel Sorting on Cache-coherent DSM
//! Multiprocessors* (SC 1999), plus a real threaded sorting library.
//!
//! The workspace has two halves:
//!
//! * **The study** ([`machine`], [`models`], [`algos`]): a deterministic
//!   execution-driven simulator of the paper's 64-processor SGI Origin
//!   2000 (caches, TLB, directory coherence protocol, hypercube
//!   interconnect, controller contention), the three programming-model
//!   runtimes (CC-SAS, MPI staged/direct, SHMEM), and the paper's parallel
//!   radix and sample sorting programs running on top — really sorting,
//!   with per-processor BUSY/LMEM/RMEM/SYNC time breakdowns. The `repro`
//!   binary in `ccsort-bench` regenerates every table and figure.
//! * **The library** ([`parallel`]): thread-parallel radix and sample
//!   sorts for real workloads (rayon data-parallel, plus in-process
//!   message-passing and symmetric-heap runtimes), and [`service`]: a
//!   long-running sorting service that coalesces many small concurrent
//!   requests into shared batches — the paper's message-coalescing lesson
//!   applied at the request level.
//!
//! ## Quick start: sort data on this machine
//!
//! ```
//! use ccsort::parallel::par_radix_sort;
//!
//! let mut keys: Vec<u64> = (0..50_000u64).map(|x| x.wrapping_mul(0x9E3779B97F4A7C15)).collect();
//! par_radix_sort(&mut keys);
//! assert!(keys.windows(2).all(|w| w[0] <= w[1]));
//! ```
//!
//! ## Quick start: run one of the paper's experiments
//!
//! ```
//! use ccsort::algos::{run_experiment, Algorithm, ExpConfig};
//!
//! // Radix sort under SHMEM, 8 simulated processors, 1/64-scale machine.
//! let res = run_experiment(&ExpConfig::new(Algorithm::RadixShmem, 1 << 14, 8).scale(64));
//! assert!(res.verified);
//! println!("parallel time: {:.2} ms", res.parallel_ns / 1e6);
//! println!("mean breakdown: {:?}", res.mean_breakdown());
//! ```

pub use ccsort_algos as algos;
pub use ccsort_machine as machine;
pub use ccsort_models as models;
pub use ccsort_parallel as parallel;
pub use ccsort_service as service;

/// The crate's own sanity check: the simulated study and the real library
/// agree on what "sorted" means.
pub fn verify_sorted<K: Ord>(keys: &[K]) -> bool {
    keys.windows(2).all(|w| w[0] <= w[1])
}
